package experiments

import (
	"bytes"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"microscope/attack/defense"
	"microscope/attack/victim"
	"microscope/sim/cpu"
)

// The full matrix is expensive (7 victims x 10 defenses x 5 runs), so
// every test that needs it shares one computation.
var (
	tournOnce   sync.Once
	tournMatrix *TournamentMatrix
	tournErr    error
)

func fullTournament(t *testing.T) *TournamentMatrix {
	t.Helper()
	tournOnce.Do(func() {
		tournMatrix, tournErr = RunTournament(TournamentOptions{})
	})
	if tournErr != nil {
		t.Fatal(tournErr)
	}
	return tournMatrix
}

// TestTournamentGolden gates the full matrix bytes against the
// committed golden file. Regenerate with: go test -run Golden -update
func TestTournamentGolden(t *testing.T) {
	m := fullTournament(t)
	got, err := m.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "golden_tournament.json")
	if *updateGolden {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden rewritten: %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden (run with -update): %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("tournament matrix diverges from golden %s (rerun with -update after intended changes)", path)
	}
}

// TestTournamentShape checks the acceptance floor: at least 7 victims x
// 4 handles x 5 defenses including the undefended baseline, with a
// fully populated cell grid.
func TestTournamentShape(t *testing.T) {
	m := fullTournament(t)
	if len(m.Victims) < 7 || len(m.Handles) < 4 || len(m.Defenses) < 5 {
		t.Fatalf("matrix %dx%dx%d below the 7x4x5 floor",
			len(m.Victims), len(m.Handles), len(m.Defenses))
	}
	hasNone := false
	for _, d := range m.Defenses {
		if d == "none" {
			hasNone = true
		}
	}
	if !hasNone {
		t.Error("roster lacks the undefended baseline")
	}
	want := len(m.Victims) * len(m.Handles) * len(m.Defenses)
	if len(m.Cells) != want {
		t.Errorf("got %d cells, want %d", len(m.Cells), want)
	}
	if len(m.Controls) != len(m.Victims)*len(m.Defenses) {
		t.Errorf("got %d controls, want %d", len(m.Controls), len(m.Victims)*len(m.Defenses))
	}
	for _, v := range m.Victims {
		for _, h := range m.Handles {
			for _, d := range m.Defenses {
				if m.Cell(v, h, d) == nil {
					t.Fatalf("missing cell %s/%s/%s", v, h, d)
				}
			}
		}
	}
}

// TestTournamentAcceptance asserts the matrix's headline claims:
//
//  1. Zero false positives anywhere — in particular on the PROVEN-SAFE
//     constant-time control victim.
//  2. The undefended baseline page-fault attack leaks on every
//     transmitting victim.
//  3. Every defense except the two known-ineffective entries (none,
//     pfoblivious) either detects the baseline loopsecret page-fault
//     attack or delays it into harmlessness (at most one leaky window).
func TestTournamentAcceptance(t *testing.T) {
	m := fullTournament(t)
	for _, c := range m.Controls {
		if c.FalsePositive {
			t.Errorf("false positive: %s under %s", c.Victim, c.Defense)
		}
	}
	for _, v := range m.Victims {
		if v == "ctcontrol" {
			continue
		}
		c := m.Cell(v, "pagefault", "none")
		if c == nil || c.LeakWindows == 0 {
			t.Errorf("undefended page-fault attack on %s leaked nothing", v)
		}
	}
	for _, c := range m.Cells {
		if c.Victim == "ctcontrol" && c.LeakWindows > 0 {
			t.Errorf("constant-time control leaked under %s/%s", c.Handle, c.Defense)
		}
	}
	for _, d := range m.Defenses {
		if d == "none" || d == "pfoblivious" {
			continue
		}
		c := m.Cell("loopsecret", "pagefault", d)
		if c == nil {
			t.Fatalf("missing baseline cell for %s", d)
		}
		if !c.Detected && c.LeakWindows > 1 {
			t.Errorf("defense %s neither detected nor defused the baseline attack (%d leaky windows)",
				d, c.LeakWindows)
		}
	}
}

// TestTournamentExpectedAsymmetries pins the matrix's scientific
// content: each handle class evades exactly the defenses whose
// observation point it bypasses.
func TestTournamentExpectedAsymmetries(t *testing.T) {
	m := fullTournament(t)
	check := func(victimName, handle, def string, wantDetected bool, why string) {
		t.Helper()
		c := m.Cell(victimName, handle, def)
		if c == nil {
			t.Fatalf("missing cell %s/%s/%s", victimName, handle, def)
		}
		if c.Detected != wantDetected {
			t.Errorf("%s/%s/%s: Detected=%v, want %v (%s)",
				victimName, handle, def, c.Detected, wantDetected, why)
		}
	}
	// §7.2 selective replay releases at 4 leaky windows — under the
	// Jamais Vu (6), LEASH (6) and Déjà Vu (15k-cycle) budgets.
	check("loopsecret", "selective", "jamaisvu", false, "4 faults duck threshold 6")
	check("loopsecret", "selective", "leash", false, "4 faults duck the burst threshold")
	check("loopsecret", "selective", "dejavu", false, "10k stall cycles duck the 15k budget")
	// TSX aborts never reach the kernel: the OS-side observers are
	// blind even against an attacker forced through 40 windows. Jamais
	// Vu DOES see the in-pipeline squashes — but only bites when the
	// attacker needs more windows than its threshold: a leaking victim
	// is released after 4 aborts (evasion), the constant-time control
	// starves the probe into the 40-abort backstop (alarm).
	check("loopsecret", "tsxabort", "leash", false, "no kernel faults to burst-count")
	check("loopsecret", "tsxabort", "dejavu", false, "no handler stalls to clock")
	check("ctcontrol", "tsxabort", "leash", false, "40 aborts, still no kernel faults")
	check("ctcontrol", "tsxabort", "dejavu", false, "40 aborts, still no handler stalls")
	check("loopsecret", "tsxabort", "jamaisvu", false, "4 aborts duck threshold 6")
	check("ctcontrol", "tsxabort", "jamaisvu", true, "40 in-tx squashes of one PC")
	// Mispredict replay raises no fault at all: only fault-centric
	// detectors miss it, and Jamais Vu (fault-squash counters) is
	// fault-centric too — the documented limitation.
	check("loopsecret", "mispredict", "jamaisvu", false, "fault-centric counters miss branch squashes")
	check("loopsecret", "mispredict", "leash", false, "no faults")
	// The page-fault baseline is the case every detector handles.
	check("loopsecret", "pagefault", "jamaisvu", true, "10 same-PC fault squashes")
	check("loopsecret", "pagefault", "leash", true, "10-fault same-page burst")
	check("loopsecret", "pagefault", "dejavu", true, "25k stall cycles blow the budget")

	// Prevention-side: selective delay and invisible speculation close
	// the cache channel; invisible speculation leaves port contention
	// open (§8), which the port-probed victims demonstrate.
	for _, v := range []string{"loopsecret", "aes", "modexp", "rdrand"} {
		if c := m.Cell(v, "pagefault", "delay"); c != nil && c.LeakWindows > 0 {
			t.Errorf("%s/pagefault/delay: %d leaky windows, want 0", v, c.LeakWindows)
		}
		if c := m.Cell(v, "pagefault", "invisispec"); c != nil && c.LeakWindows > 0 {
			t.Errorf("%s/pagefault/invisispec: %d leaky windows, want 0", v, c.LeakWindows)
		}
	}
	if c := m.Cell("singlesecret", "pagefault", "invisispec"); c != nil && c.LeakWindows == 0 {
		t.Error("singlesecret/pagefault/invisispec: port channel should survive invisible speculation")
	}
	if c := m.Cell("singlesecret", "pagefault", "none"); c != nil && c.LeakWindows == 0 {
		t.Error("singlesecret/pagefault/none: port channel leaked nothing")
	}
	// SIMF scrubs the probe before the handler runs on every fault…
	if c := m.Cell("loopsecret", "pagefault", "simf"); c != nil && c.LeakWindows > 0 {
		t.Errorf("loopsecret/pagefault/simf: %d leaky windows, want 0", c.LeakWindows)
	}
	// …but never sees TSX-abort replays (no fault delivered to the OS).
	if c := m.Cell("loopsecret", "tsxabort", "simf"); c != nil && c.LeakWindows == 0 {
		t.Error("loopsecret/tsxabort/simf: abort windows should bypass the multi-flush")
	}
	// Mispredict replay needs conditional branches: straight-line
	// victims cannot be attacked that way.
	for _, v := range []string{"aes", "singlesecret", "rdrand", "ctcontrol"} {
		if c := m.Cell(v, "mispredict", "none"); c != nil && c.Mounted {
			t.Errorf("%s/mispredict mounted on straight-line code", v)
		}
	}
	for _, v := range []string{"loopsecret", "modexp", "controlflow"} {
		c := m.Cell(v, "mispredict", "none")
		if c == nil || !c.Mounted || c.Replays == 0 {
			t.Errorf("%s/mispredict: expected a mounted attack with replays, got %+v", v, c)
		}
	}
}

// tournSubset is the reduced roster the invariance tests sweep: two
// victims (one cache-probed with every handle class applicable, one
// port-probed) across a detector, a preventer, an OS defense and the
// baseline — small enough to run twice, wide enough to cover all four
// drivers and all three defense layers.
func tournSubset() TournamentOptions {
	return TournamentOptions{
		Victims:  []string{"loopsecret", "controlflow"},
		Defenses: []string{"none", "jamaisvu", "delay", "leash", "tsgx"},
	}
}

// TestTournamentWorkerInvariance: matrix bytes are identical whether
// trials run on one worker or many.
func TestTournamentWorkerInvariance(t *testing.T) {
	opt1 := tournSubset()
	opt1.Workers = 1
	optN := tournSubset()
	optN.Workers = 4
	m1, err := RunTournament(opt1)
	if err != nil {
		t.Fatal(err)
	}
	mN, err := RunTournament(optN)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := m1.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bN, err := mN.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b1, bN) {
		t.Error("matrix bytes depend on the worker count")
	}
}

// TestTournamentMemoInvariance: matrix bytes are identical with the
// replay-splice memo on and off — the memo's soundness contract
// surfaced at the tournament level. Jamais Vu cells additionally prove
// the self-gating path (squash counters disable splicing).
func TestTournamentMemoInvariance(t *testing.T) {
	on := tournSubset()
	off := tournSubset()
	off.NoMemo = true
	mOn, err := RunTournament(on)
	if err != nil {
		t.Fatal(err)
	}
	mOff, err := RunTournament(off)
	if err != nil {
		t.Fatal(err)
	}
	bOn, err := mOn.JSON()
	if err != nil {
		t.Fatal(err)
	}
	bOff, err := mOff.JSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(bOn, bOff) {
		t.Error("matrix bytes depend on the replay memo")
	}
}

// defenseHookCfgs are the per-defense core-config tweaks whose cpu
// hooks are new in this change set (plus the two pre-existing hardware
// knobs they compose with); each must preserve the fast-forward and
// replay-memo equivalence contracts.
func defenseHookCfgs() []struct {
	name  string
	tweak func(*cpu.Config)
} {
	return []struct {
		name  string
		tweak func(*cpu.Config)
	}{
		{"jamaisvu", func(c *cpu.Config) { c.SquashThreshold = 6; c.SquashEpoch = 1_000_000 }},
		{"delay", func(c *cpu.Config) { c.DelaySpeculative = true }},
		{"fence", func(c *cpu.Config) { c.FenceAfterFlush = true }},
		{"invisispec", func(c *cpu.Config) { c.InvisibleSpeculation = true }},
	}
}

// ffDefenseScenarios is the differential subset: a loop victim (memo
// splices engage), a divider victim (delay interacts with the FP port)
// and the RNG victim (per-window state advance).
func ffDefenseScenarios() []ffScenario {
	var out []ffScenario
	for _, sc := range ffScenarios() {
		switch sc.name {
		case "loopsecret", "singlesecret-subnormal", "rdrand-bias":
			out = append(out, sc)
		}
	}
	return out
}

// TestDefenseHooksFastForwardEquivalence extends the fast-forward
// differential to every defense config hook: skip-on and skip-off runs
// must stay observationally identical with the hook active.
func TestDefenseHooksFastForwardEquivalence(t *testing.T) {
	for _, dc := range defenseHookCfgs() {
		dc := dc
		for _, sc := range ffDefenseScenarios() {
			sc := sc
			t.Run(dc.name+"/"+sc.name, func(t *testing.T) {
				t.Parallel()
				onCfg := ffJitterConfig()
				dc.tweak(&onCfg)
				onCfg.FastForward = true
				offCfg := ffJitterConfig()
				dc.tweak(&offCfg)
				offCfg.FastForward = false
				on := runFFScenario(t, sc, onCfg)
				off := runFFScenario(t, sc, offCfg)
				ffAssertEqual(t, on, off, " on", "off")
			})
		}
	}
}

// TestDefenseHooksMemoEquivalence is the replay-memo analogue; for the
// Jamais Vu hook it also proves the self-gate (squash counters armed =>
// zero splices, or the alarm would count snipped squashes).
func TestDefenseHooksMemoEquivalence(t *testing.T) {
	for _, dc := range defenseHookCfgs() {
		dc := dc
		for _, sc := range ffDefenseScenarios() {
			sc := sc
			t.Run(dc.name+"/"+sc.name, func(t *testing.T) {
				t.Parallel()
				onCfg := cpu.DefaultConfig()
				dc.tweak(&onCfg)
				onCfg.ReplayMemo = true
				offCfg := cpu.DefaultConfig()
				dc.tweak(&offCfg)
				offCfg.ReplayMemo = false
				on := runFFScenario(t, sc, onCfg)
				off := runFFScenario(t, sc, offCfg)
				if dc.name == "jamaisvu" && on.memo.Hits != 0 {
					t.Errorf("memo spliced %d windows with squash counters armed (self-gate breached)",
						on.memo.Hits)
				}
				ffAssertEqual(t, on, off, " on", "off")
			})
		}
	}
}

// mutantTournVictim adapts a fuzz mutant into a tournament competitor,
// pairing each mutant family with its probe channel.
func mutantTournVictim(sel uint8, a uint64, tail []byte) (tournVictim, bool) {
	lay, handleSym := mutantLayout(sel, a, tail)
	if lay == nil || lay.Sym(handleSym) == 0 {
		return tournVictim{}, false
	}
	tv := tournVictim{SanTarget: SanTarget{
		Name:   "mutant",
		Handle: handleSym,
		Build: func() (*victim.Layout, error) {
			l, _ := mutantLayout(sel, a, tail)
			return l, nil
		},
	}}
	switch sel % 4 {
	case 0, 1: // singlesecret, controlflow: divider transmitters
		tv.probe = probePort
	default: // loopsecret, modexp: probe-page transmitters
		tv.probe = probeCache
		tv.probeSym = "probe"
	}
	return tv, true
}

// FuzzTournamentDeterminism runs a mini-tournament (one mutant victim,
// the undefended baseline plus one fuzz-chosen defense, all four handle
// classes) at two worker counts and requires byte-identical matrices —
// and, implicitly, no panics anywhere in the drivers.
func FuzzTournamentDeterminism(f *testing.F) {
	f.Add(uint8(0), uint64(7), []byte{}, uint8(1))
	f.Add(uint8(1), uint64(1), []byte{}, uint8(3))
	f.Add(uint8(2), uint64(3), []byte{1, 4, 2}, uint8(5))
	f.Add(uint8(3), uint64(0x03050b07), []byte{}, uint8(7))
	f.Fuzz(func(t *testing.T, sel uint8, a uint64, tail []byte, defSel uint8) {
		tv, ok := mutantTournVictim(sel, a, tail)
		if !ok {
			t.Skip("constructor rejected mutant")
		}
		roster := defense.All()
		defs := []defense.Defense{roster[0], roster[1+int(defSel)%(len(roster)-1)]}
		handles := TournamentHandles()
		run := func(workers int) []byte {
			m, err := runTournamentMatrix([]tournVictim{tv}, defs, handles,
				cpu.DefaultConfig(), workers)
			if err != nil {
				t.Fatalf("workers=%d: %v", workers, err)
			}
			b, err := m.JSON()
			if err != nil {
				t.Fatal(err)
			}
			return b
		}
		if !bytes.Equal(run(1), run(3)) {
			t.Errorf("mini-matrix bytes depend on worker count (sel=%d a=%#x def=%s)",
				sel, a, defs[1].Name())
		}
	})
}
