// The defense tournament: every built-in victim crossed with every
// replay-handle class and every roster defense (including the
// undefended baseline), on rigs forked from one warm checkpoint per
// victim. Each cell mounts the attack with the defense active at all
// three layers (core config, victim hardening, kernel hooks) and
// records what the attacker measured and what the defense reported; a
// control run per (victim, defense) with no attack mounted supplies the
// false-positive and overhead columns. The resulting matrix is
// byte-deterministic: independent of worker count (sweep.Run's indexed
// merge) and of the replay-splice memo (proven cycle-exact elsewhere),
// so it gates as a committed golden file.
package experiments

import (
	"encoding/json"
	"fmt"
	"strings"

	"microscope/analysis/sweep"
	"microscope/attack/defense"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/mem"
)

// Tournament drive parameters. The page-fault recipe replays a fixed 10
// windows; the §7.2 selective recipe releases at 4 leaky windows
// (under the default Jamais Vu, LEASH and Déjà Vu budgets) with a
// 40-replay backstop when the defense starves its probe; the TSX and
// mispredict drives use the same 4/40 policy.
const (
	tournPFReplays       = 10
	tournSelectiveLeaks  = 4
	tournBackstopReplays = 40
	tournHandlerLatency  = 2500
	tournMaxCycles       = 50_000_000
	tournMaxSteps        = 4_000_000
	tournReprimes        = 12
)

// TournamentHandles returns the replay-handle classes in matrix order.
func TournamentHandles() []string {
	return []string{"pagefault", "selective", "tsxabort", "mispredict"}
}

// probeKind selects the attacker's measurement channel for a victim.
type probeKind int

const (
	probeNone  probeKind = iota // control victim: nothing to measure
	probeCache                  // flush+reload of a probe page's lines
	probePort                   // divider-port occupancy deltas
)

// tournVictim is one tournament victim: a SanTarget plus the probe the
// attacker uses against it.
type tournVictim struct {
	SanTarget
	probe    probeKind
	probeSym string
}

// tournamentVictims pairs every built-in victim with its channel:
// cache-probed victims transmit through a known probe page, port-probed
// victims through divider occupancy, and the constant-time control
// through nothing at all.
func tournamentVictims() []tournVictim {
	specs := map[string]struct {
		kind probeKind
		sym  string
	}{
		"aes":          {probeCache, "td0"},
		"modexp":       {probeCache, "probe"},
		"singlesecret": {probePort, ""},
		"controlflow":  {probePort, ""},
		"loopsecret":   {probeCache, "probe"},
		"rdrand":       {probeCache, "array"},
		"ctcontrol":    {probeNone, ""},
	}
	var out []tournVictim
	for _, t := range SanTargets() {
		s, ok := specs[t.Name]
		if !ok {
			// A new SanTarget without a probe spec still competes; the
			// attacker just measures nothing until a spec is added.
			s.kind = probeNone
		}
		out = append(out, tournVictim{SanTarget: t, probe: s.kind, probeSym: s.sym})
	}
	return out
}

// TournamentOptions configures RunTournament.
type TournamentOptions struct {
	// Workers is the sweep worker count (<= 0: GOMAXPROCS). The matrix
	// bytes never depend on it.
	Workers int
	// NoMemo disables the replay-splice memo in the base configuration.
	// The matrix bytes never depend on it either — that equivalence is
	// part of the memo's soundness contract and is tested.
	NoMemo bool
	// Victims/Defenses/Handles, when non-empty, restrict the roster to
	// the named entries (matrix order is preserved). Unknown names are
	// an error.
	Victims  []string
	Defenses []string
	Handles  []string
}

// TournamentCell is one (victim, handle, defense) attack run.
type TournamentCell struct {
	Victim  string `json:"victim"`
	Handle  string `json:"handle"`
	Defense string `json:"defense"`
	// Mounted is false when the handle class does not apply to the
	// victim (e.g. mispredict replay on straight-line code); the rest of
	// the row is then a defended-but-unattacked run.
	Mounted bool `json:"mounted"`
	// Replays counts the replay events the attacker induced (handle
	// faults, transaction aborts, or mispredict squashes).
	Replays int `json:"replays"`
	// LeakWindows counts replay windows whose probe sample was hot.
	LeakWindows int  `json:"leak_windows"`
	Detected    bool `json:"detected"`
	// Counters are the defense's own counters after the run.
	Counters map[string]uint64 `json:"counters,omitempty"`
	Cycles   uint64            `json:"cycles"`
}

// TournamentControl is the unattacked run of one (victim, defense):
// the defense's false-positive and overhead measurement.
type TournamentControl struct {
	Victim        string `json:"victim"`
	Defense       string `json:"defense"`
	FalsePositive bool   `json:"false_positive"`
	Cycles        uint64 `json:"cycles"`
	// OverheadPermille is this control's slowdown relative to the same
	// victim's undefended control, in parts per thousand.
	OverheadPermille int64 `json:"overhead_permille"`
}

// TournamentSummary aggregates one defense's column.
type TournamentSummary struct {
	Defense     string `json:"defense"`
	AttackCells int    `json:"attack_cells"`
	// DetectedPermille / LeakyPermille are over mounted attack cells.
	DetectedPermille int64 `json:"detected_permille"`
	LeakyPermille    int64 `json:"leaky_permille"`
	FalsePositives   int   `json:"false_positives"`
	// MeanOverheadPermille averages the per-victim control overheads.
	MeanOverheadPermille int64 `json:"mean_overhead_permille"`
}

// TournamentMatrix is the full cross-product result.
type TournamentMatrix struct {
	Schema    string              `json:"schema"`
	Victims   []string            `json:"victims"`
	Handles   []string            `json:"handles"`
	Defenses  []string            `json:"defenses"`
	Cells     []TournamentCell    `json:"cells"`
	Controls  []TournamentControl `json:"controls"`
	Summaries []TournamentSummary `json:"summaries"`
}

// JSON renders the matrix as stable, indented JSON with a trailing
// newline — the byte-exact golden format.
func (m *TournamentMatrix) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Cell returns the cell for (victim, handle, defense), or nil.
func (m *TournamentMatrix) Cell(victim, handle, def string) *TournamentCell {
	for i := range m.Cells {
		c := &m.Cells[i]
		if c.Victim == victim && c.Handle == handle && c.Defense == def {
			return c
		}
	}
	return nil
}

// Control returns the control row for (victim, defense), or nil.
func (m *TournamentMatrix) Control(victim, def string) *TournamentControl {
	for i := range m.Controls {
		c := &m.Controls[i]
		if c.Victim == victim && c.Defense == def {
			return c
		}
	}
	return nil
}

// Render formats the per-defense summary table plus a detection grid
// per handle class (D = detected, L = leaked undetected, . = clean,
// "-" = not mounted) for human consumption.
func (m *TournamentMatrix) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "defense tournament: %d victims x %d handles x %d defenses\n\n",
		len(m.Victims), len(m.Handles), len(m.Defenses))
	fmt.Fprintf(&sb, "%-12s %8s %8s %6s %9s\n",
		"defense", "detect‰", "leaky‰", "FPs", "overhead‰")
	for _, s := range m.Summaries {
		fmt.Fprintf(&sb, "%-12s %8d %8d %6d %9d\n",
			s.Defense, s.DetectedPermille, s.LeakyPermille,
			s.FalsePositives, s.MeanOverheadPermille)
	}
	for _, h := range m.Handles {
		fmt.Fprintf(&sb, "\nhandle %s (rows: victim, cols: defense)\n", h)
		fmt.Fprintf(&sb, "%-14s", "")
		for _, d := range m.Defenses {
			fmt.Fprintf(&sb, " %-10.10s", d)
		}
		sb.WriteByte('\n')
		for _, v := range m.Victims {
			fmt.Fprintf(&sb, "%-14s", v)
			for _, d := range m.Defenses {
				mark := "?"
				if c := m.Cell(v, h, d); c != nil {
					switch {
					case !c.Mounted:
						mark = "-"
					case c.Detected:
						mark = "D"
					case c.LeakWindows > 0:
						mark = "L"
					default:
						mark = "."
					}
				}
				fmt.Fprintf(&sb, " %-10s", mark)
			}
			sb.WriteByte('\n')
		}
	}
	return sb.String()
}

// tournTrial is one sweep trial's output: the four attack cells and the
// control run of a single (victim, defense) pair.
type tournTrial struct {
	cells   []TournamentCell
	control TournamentControl
}

// RunTournament runs the full cross-product and assembles the matrix.
func RunTournament(opt TournamentOptions) (*TournamentMatrix, error) {
	victims, err := pickVictims(opt.Victims)
	if err != nil {
		return nil, err
	}
	defenses, err := pickDefenses(opt.Defenses)
	if err != nil {
		return nil, err
	}
	handles, err := pickHandles(opt.Handles)
	if err != nil {
		return nil, err
	}
	baseCfg := cpu.DefaultConfig()
	baseCfg.ReplayMemo = !opt.NoMemo
	return runTournamentMatrix(victims, defenses, handles, baseCfg, opt.Workers)
}

// runTournamentMatrix is the roster-agnostic engine behind
// RunTournament; the fuzz harness feeds it mutant victims directly.
func runTournamentMatrix(victims []tournVictim, defenses []defense.Defense,
	handles []string, baseCfg cpu.Config, workers int) (*TournamentMatrix, error) {
	// One warm checkpoint per victim: boot, install, capture. Every
	// trial forks from here, so the 64 MB platform boots once per
	// victim plus once per concurrent worker, not once per cell.
	type warm struct {
		cp   *Checkpoint
		pool *rigPool
	}
	warms := make([]warm, len(victims))
	for i, v := range victims {
		lay, err := v.Build()
		if err != nil {
			return nil, fmt.Errorf("tournament: build %s: %w", v.Name, err)
		}
		rig, err := NewRig(baseCfg)
		if err != nil {
			return nil, err
		}
		if err := rig.InstallVictim(lay); err != nil {
			return nil, fmt.Errorf("tournament: install %s: %w", v.Name, err)
		}
		cp, err := rig.Checkpoint()
		if err != nil {
			return nil, fmt.Errorf("tournament: checkpoint %s: %w", v.Name, err)
		}
		warms[i] = warm{cp: cp, pool: newRigPool(cp, rig)}
	}

	trials := len(victims) * len(defenses)
	results, err := sweep.Run(trials, sweep.Options{Workers: workers},
		func(trial int) (tournTrial, error) {
			v := victims[trial/len(defenses)]
			d := defenses[trial%len(defenses)]
			w := warms[trial/len(defenses)]
			return runTournTrial(w.pool, w.cp, baseCfg, v, d, handles)
		})
	if err != nil {
		return nil, err
	}

	m := &TournamentMatrix{Schema: "microscope/tournament/v1"}
	for _, v := range victims {
		m.Victims = append(m.Victims, v.Name)
	}
	m.Handles = handles
	for _, d := range defenses {
		m.Defenses = append(m.Defenses, d.Name())
	}
	for _, r := range results {
		m.Cells = append(m.Cells, r.cells...)
		m.Controls = append(m.Controls, r.control)
	}

	// Overhead: each control against the same victim's undefended one.
	base := map[string]uint64{}
	for _, c := range m.Controls {
		if c.Defense == "none" {
			base[c.Victim] = c.Cycles
		}
	}
	for i := range m.Controls {
		c := &m.Controls[i]
		if b := base[c.Victim]; b > 0 {
			c.OverheadPermille = (int64(c.Cycles) - int64(b)) * 1000 / int64(b)
		}
	}

	for _, d := range m.Defenses {
		s := TournamentSummary{Defense: d}
		detected, leaky := 0, 0
		for _, c := range m.Cells {
			if c.Defense != d || !c.Mounted {
				continue
			}
			s.AttackCells++
			if c.Detected {
				detected++
			}
			if c.LeakWindows > 0 {
				leaky++
			}
		}
		if s.AttackCells > 0 {
			s.DetectedPermille = int64(detected) * 1000 / int64(s.AttackCells)
			s.LeakyPermille = int64(leaky) * 1000 / int64(s.AttackCells)
		}
		var overheads, n int64
		for _, c := range m.Controls {
			if c.Defense != d {
				continue
			}
			if c.FalsePositive {
				s.FalsePositives++
			}
			overheads += c.OverheadPermille
			n++
		}
		if n > 0 {
			s.MeanOverheadPermille = overheads / n
		}
		m.Summaries = append(m.Summaries, s)
	}
	return m, nil
}

func pickVictims(names []string) ([]tournVictim, error) {
	all := tournamentVictims()
	if len(names) == 0 {
		return all, nil
	}
	var out []tournVictim
	for _, n := range names {
		found := false
		for _, v := range all {
			if v.Name == n {
				out = append(out, v)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("tournament: unknown victim %q", n)
		}
	}
	return out, nil
}

func pickDefenses(names []string) ([]defense.Defense, error) {
	if len(names) == 0 {
		return defense.All(), nil
	}
	var out []defense.Defense
	for _, n := range names {
		d := defense.Find(n)
		if d == nil {
			return nil, fmt.Errorf("tournament: unknown defense %q", n)
		}
		out = append(out, d)
	}
	return out, nil
}

func pickHandles(names []string) ([]string, error) {
	all := TournamentHandles()
	if len(names) == 0 {
		return all, nil
	}
	var out []string
	for _, n := range names {
		found := false
		for _, h := range all {
			if h == n {
				out = append(out, n)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("tournament: unknown handle %q", n)
		}
	}
	return out, nil
}

// runTournTrial runs one (victim, defense) pair: the control plus one
// cell per handle class, all on a single pooled rig restored to the
// victim's checkpoint between runs.
func runTournTrial(pool *rigPool, cp *Checkpoint, baseCfg cpu.Config,
	v tournVictim, d defense.Defense, handles []string) (tournTrial, error) {
	rig, err := pool.get() // arrives restored to cp
	if err != nil {
		return tournTrial{}, err
	}
	defer pool.put(rig)

	cfg := baseCfg
	d.Configure(&cfg)
	lay, err := v.Build()
	if err != nil {
		return tournTrial{}, err
	}
	hardened, err := d.Harden(lay)
	if err != nil {
		return tournTrial{}, fmt.Errorf("tournament: harden %s/%s: %w", v.Name, d.Name(), err)
	}

	// prep applies the defense to the (just restored) rig. Restores do
	// not clear host-side countermeasure wiring, so reset explicitly.
	prep := func() error {
		if err := rig.Core.UpdateTiming(cfg); err != nil {
			return err
		}
		rig.Kernel.ResetCountermeasures()
		return d.Install(rig.Kernel, rig.Victim)
	}

	var out tournTrial
	if err := prep(); err != nil {
		return out, err
	}
	start := rig.Core.Cycle()
	hardened.Start(rig.Kernel, 0)
	if err := rig.Run(tournMaxCycles); err != nil {
		return out, fmt.Errorf("tournament: control %s/%s: %w", v.Name, d.Name(), err)
	}
	verdict := d.Verdict(rig.Kernel, rig.Core, rig.Victim, 0)
	out.control = TournamentControl{
		Victim:        v.Name,
		Defense:       d.Name(),
		FalsePositive: verdict.Detected,
		Cycles:        rig.Core.Cycle() - start,
	}

	for _, h := range handles {
		if err := rig.Restore(cp); err != nil {
			return out, err
		}
		if err := prep(); err != nil {
			return out, err
		}
		res, err := driveHandle(rig, v, hardened, h)
		if err != nil {
			return out, fmt.Errorf("tournament: %s/%s/%s: %w", v.Name, h, d.Name(), err)
		}
		verdict := d.Verdict(rig.Kernel, rig.Core, rig.Victim, 0)
		out.cells = append(out.cells, TournamentCell{
			Victim:      v.Name,
			Handle:      h,
			Defense:     d.Name(),
			Mounted:     res.mounted,
			Replays:     res.replays,
			LeakWindows: res.leaky,
			Detected:    verdict.Detected,
			Counters:    verdict.Counters,
			Cycles:      res.cycles,
		})
	}
	return out, nil
}

// prober samples the attacker's channel once per replay window.
type prober struct {
	kind  probeKind
	core  *cpu.Core
	lines []mem.Addr // physical addresses of the probe page's lines
	busy  uint64
}

// newProber sets the channel up cold: cache probes translate and flush
// every line of the probe page; port probes latch the divider counter.
func newProber(rig *Rig, v tournVictim, lay *victim.Layout) (*prober, error) {
	p := &prober{kind: v.probe, core: rig.Core}
	switch v.probe {
	case probeCache:
		base := lay.Sym(v.probeSym)
		for off := mem.Addr(0); off < mem.PageSize; off += 64 {
			pa, err := rig.Victim.AddressSpace().Translate(base + off)
			if err != nil {
				return nil, err
			}
			p.lines = append(p.lines, pa)
			rig.Core.Hierarchy().FlushAddr(pa)
		}
	case probePort:
		p.busy = rig.Core.Ports().DivBusyCycles
	}
	return p, nil
}

// sample reports whether the window since the previous sample leaked,
// re-arming the channel (re-flushing hot lines / re-latching the
// counter) as it goes.
func (p *prober) sample() bool {
	switch p.kind {
	case probeCache:
		hot := false
		for _, pa := range p.lines {
			if p.core.Hierarchy().LevelOf(pa) != cache.LevelMem {
				hot = true
				p.core.Hierarchy().FlushAddr(pa)
			}
		}
		return hot
	case probePort:
		busy := p.core.Ports().DivBusyCycles
		leaked := busy > p.busy
		p.busy = busy
		return leaked
	}
	return false
}

// driveResult is what the attacker took away from one cell.
type driveResult struct {
	mounted bool
	replays int
	leaky   int
	cycles  uint64
}

func driveHandle(rig *Rig, v tournVictim, hardened *victim.Layout, handle string) (driveResult, error) {
	switch handle {
	case "pagefault":
		return driveRecipe(rig, v, hardened, false)
	case "selective":
		return driveRecipe(rig, v, hardened, true)
	case "tsxabort":
		return driveTSX(rig, v, hardened)
	case "mispredict":
		return driveMispredict(rig, v, hardened)
	}
	return driveResult{}, fmt.Errorf("unknown handle class %q", handle)
}

// driveRecipe mounts the module page-fault recipe on the victim's
// handle page. The plain variant replays a fixed tournPFReplays
// windows; the selective (§7.2) variant releases as soon as
// tournSelectiveLeaks windows have leaked — few enough faults to duck
// the default detector budgets — with a backstop when the defense
// starves the probe.
func driveRecipe(rig *Rig, v tournVictim, hardened *victim.Layout, selective bool) (driveResult, error) {
	pb, err := newProber(rig, v, hardened)
	if err != nil {
		return driveResult{}, err
	}
	res := driveResult{mounted: true}
	rec := &microscope.Recipe{
		Name:           "tournament",
		Victim:         rig.Victim,
		Handle:         hardened.Sym(v.Handle),
		HandlerLatency: tournHandlerLatency,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		res.replays = ev.Replays
		if pb.sample() {
			res.leaky++
		}
		if selective {
			if res.leaky >= tournSelectiveLeaks || ev.Replays >= tournBackstopReplays {
				return microscope.Release
			}
		} else if ev.Replays >= tournPFReplays {
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		return driveResult{}, err
	}
	start := rig.Core.Cycle()
	hardened.Start(rig.Kernel, 0)
	if err := rig.Run(tournMaxCycles); err != nil {
		return driveResult{}, err
	}
	res.cycles = rig.Core.Cycle() - start
	return res, nil
}

// driveTSX arms the handle page and wraps the (already hardened)
// victim in the attacker's own transaction: in-transaction faults
// become aborts the kernel never sees, and each abort-retry is a
// replay window observed passively. The wrap falls back to untracked
// execution after its budget so the victim always finishes.
func driveTSX(rig *Rig, v tournVictim, hardened *victim.Layout) (driveResult, error) {
	wrapped, err := victim.WrapTx(hardened, int64(tournBackstopReplays+24), false)
	if err != nil {
		return driveResult{}, err
	}
	pb, err := newProber(rig, v, hardened)
	if err != nil {
		return driveResult{}, err
	}
	handleVA := hardened.Sym(v.Handle)
	as := rig.Victim.AddressSpace()
	if _, err := as.SetPresent(handleVA, false); err != nil {
		return driveResult{}, err
	}
	rig.Kernel.Invlpg(rig.Victim, handleVA)

	res := driveResult{mounted: true}
	start := rig.Core.Cycle()
	wrapped.Start(rig.Kernel, 0)
	ctx := rig.Core.Context(0)
	lastAborts := ctx.Stats().TxAborts
	released := false
	for steps := 0; steps < tournMaxSteps && !rig.Core.Halted(); steps++ {
		rig.Core.Step()
		if a := ctx.Stats().TxAborts; a != lastAborts {
			res.replays += int(a - lastAborts)
			lastAborts = a
			if pb.sample() {
				res.leaky++
			}
			if !released && (res.leaky >= tournSelectiveLeaks || res.replays >= tournBackstopReplays) {
				if _, err := as.SetPresent(handleVA, true); err != nil {
					return driveResult{}, err
				}
				rig.Kernel.Invlpg(rig.Victim, handleVA)
				released = true
			}
		}
	}
	if !rig.Core.Halted() {
		return driveResult{}, fmt.Errorf("tsx drive did not finish in %d steps", tournMaxSteps)
	}
	res.cycles = rig.Core.Cycle() - start
	return res, nil
}

// driveMispredict primes the branch predictor against every conditional
// branch in the victim and re-primes after each observed mispredict:
// each wrong prediction squashes and re-executes the branch shadow — a
// replay window with no fault for any fault-centric defense to see.
// Victims without conditional branches cannot be attacked this way;
// the cell runs unmounted.
func driveMispredict(rig *Rig, v tournVictim, hardened *victim.Layout) (driveResult, error) {
	var branches []int
	for i, in := range hardened.Prog.Instrs {
		if in.Op.IsCondBranch() {
			branches = append(branches, i)
		}
	}
	res := driveResult{mounted: len(branches) > 0}
	ctx := rig.Core.Context(0)
	prime := func() {
		for _, pc := range branches {
			// Pin every branch to predicted-not-taken: taken branches
			// (loop back-edges, secret-taken paths) then mispredict.
			ctx.Predictor().Prime(pc, false, pc+1)
		}
	}
	pb, err := newProber(rig, v, hardened)
	if err != nil {
		return driveResult{}, err
	}
	if res.mounted {
		prime()
	}
	start := rig.Core.Cycle()
	startMis := ctx.Stats().Mispredicts
	hardened.Start(rig.Kernel, 0)
	if !res.mounted {
		if err := rig.Run(tournMaxCycles); err != nil {
			return driveResult{}, err
		}
		res.cycles = rig.Core.Cycle() - start
		return res, nil
	}
	last := startMis
	reprimes := 0
	for steps := 0; steps < tournMaxSteps && !rig.Core.Halted(); steps++ {
		rig.Core.Step()
		if m := ctx.Stats().Mispredicts; m != last {
			last = m
			if pb.sample() {
				res.leaky++
			}
			if reprimes < tournReprimes {
				prime()
				reprimes++
			}
		}
	}
	if !rig.Core.Halted() {
		return driveResult{}, fmt.Errorf("mispredict drive did not finish in %d steps", tournMaxSteps)
	}
	res.replays = int(last - startMis)
	res.cycles = rig.Core.Cycle() - start
	return res, nil
}
