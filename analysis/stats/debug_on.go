//go:build statsdebug

package stats

// debugChecks enables the precondition checks; see debug_off.go.
const debugChecks = true
