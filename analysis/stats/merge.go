package stats

import (
	"math"
	"sort"
)

// Accumulator accumulates latency samples incrementally and supports
// merging two accumulators, so parallel sweep workers can each summarize
// their own trials and combine at the end without re-sorting the union
// of all samples.
//
// Moments (mean, variance) use Welford's online update and the Chan et
// al. pairwise-merge formula, which are exact. Quantiles come from the
// retained samples: each accumulator keeps its samples sorted (sorting
// its own chunk once, lazily), and Merge combines two sorted runs with a
// single linear pass.
type Accumulator struct {
	n        int
	min, max float64
	mean, m2 float64
	samples  []float64
	unsorted bool
}

// NewAccumulator returns an empty accumulator.
func NewAccumulator() *Accumulator {
	return &Accumulator{min: math.Inf(1), max: math.Inf(-1)}
}

// N returns the number of accumulated samples.
func (a *Accumulator) N() int { return a.n }

// Add accumulates one sample.
func (a *Accumulator) Add(x float64) {
	a.n++
	if x < a.min {
		a.min = x
	}
	if x > a.max {
		a.max = x
	}
	d := x - a.mean
	a.mean += d / float64(a.n)
	a.m2 += d * (x - a.mean)
	if len(a.samples) > 0 && x < a.samples[len(a.samples)-1] {
		a.unsorted = true
	}
	a.samples = append(a.samples, x)
}

// AddSamples accumulates a batch of uint64 samples.
func (a *Accumulator) AddSamples(xs []uint64) {
	for _, x := range xs {
		a.Add(float64(x))
	}
}

// Sort sorts the retained samples now instead of at Summary/Merge time.
// Sweep workers call it so each chunk is sorted in parallel and the
// final merges are pure linear passes.
func (a *Accumulator) Sort() {
	if a.unsorted {
		sort.Float64s(a.samples)
		a.unsorted = false
	}
}

// Merge folds b into a. b is left untouched apart from having its
// samples sorted. Merging is exact: the result is identical (up to
// float rounding of the moment merge) to accumulating all samples into
// one accumulator, and deterministic for a fixed merge order.
func (a *Accumulator) Merge(b *Accumulator) {
	if b == nil || b.n == 0 {
		return
	}
	if a.n == 0 {
		b.Sort()
		a.n, a.min, a.max, a.mean, a.m2 = b.n, b.min, b.max, b.mean, b.m2
		a.samples = append(a.samples[:0], b.samples...)
		a.unsorted = false
		return
	}
	if b.min < a.min {
		a.min = b.min
	}
	if b.max > a.max {
		a.max = b.max
	}
	// Chan et al. parallel moments.
	na, nb := float64(a.n), float64(b.n)
	d := b.mean - a.mean
	tot := na + nb
	a.m2 += b.m2 + d*d*na*nb/tot
	a.mean += d * nb / tot
	a.n += b.n
	a.Sort()
	b.Sort()
	a.samples = mergeSorted(a.samples, b.samples)
}

// mergeSorted merges two sorted runs in one linear pass.
func mergeSorted(x, y []float64) []float64 {
	out := make([]float64, 0, len(x)+len(y))
	i, j := 0, 0
	for i < len(x) && j < len(y) {
		if x[i] <= y[j] {
			out = append(out, x[i])
			i++
		} else {
			out = append(out, y[j])
			j++
		}
	}
	out = append(out, x[i:]...)
	return append(out, y[j:]...)
}

// Summary reduces the accumulator to a Summary. Quantiles are exact
// (computed from the retained, sorted samples).
func (a *Accumulator) Summary() Summary {
	if a.n == 0 {
		return Summary{}
	}
	a.Sort()
	return Summary{
		N:      a.n,
		Min:    a.min,
		Max:    a.max,
		Mean:   a.mean,
		Stddev: math.Sqrt(a.m2 / float64(a.n)),
		P50:    Quantile(a.samples, 0.50),
		P95:    Quantile(a.samples, 0.95),
		P99:    Quantile(a.samples, 0.99),
	}
}

// Merge combines two Summaries without access to the underlying samples.
// N, Min, Max, Mean and Stddev are exact (recovered via moments); the
// quantiles are *approximated* as N-weighted means of the inputs'
// quantiles, which is only faithful when the two sample sets are drawn
// from similar distributions. When the samples are available, prefer
// Accumulator.Merge, which is exact.
func Merge(a, b Summary) Summary {
	if a.N == 0 {
		return b
	}
	if b.N == 0 {
		return a
	}
	na, nb := float64(a.N), float64(b.N)
	tot := na + nb
	d := b.Mean - a.Mean
	m2 := na*a.Stddev*a.Stddev + nb*b.Stddev*b.Stddev + d*d*na*nb/tot
	wq := func(x, y float64) float64 { return (x*na + y*nb) / tot }
	return Summary{
		N:      a.N + b.N,
		Min:    math.Min(a.Min, b.Min),
		Max:    math.Max(a.Max, b.Max),
		Mean:   a.Mean + d*nb/tot,
		Stddev: math.Sqrt(m2 / tot),
		P50:    wq(a.P50, b.P50),
		P95:    wq(a.P95, b.P95),
		P99:    wq(a.P99, b.P99),
	}
}
