// Package stats provides the small statistics toolkit the experiment
// harness uses: summaries, quantiles, histograms and threshold counting
// over latency samples.
package stats

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Summary describes a sample set.
type Summary struct {
	N      int
	Min    float64
	Max    float64
	Mean   float64
	Stddev float64
	P50    float64
	P95    float64
	P99    float64
}

// Summarize computes a Summary of xs. It returns a zero Summary for an
// empty input.
func Summarize(xs []uint64) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	fs := make([]float64, len(xs))
	var sum float64
	for i, x := range xs {
		fs[i] = float64(x)
		sum += fs[i]
	}
	sort.Float64s(fs)
	mean := sum / float64(len(fs))
	var ss float64
	for _, f := range fs {
		d := f - mean
		ss += d * d
	}
	return Summary{
		N:      len(fs),
		Min:    fs[0],
		Max:    fs[len(fs)-1],
		Mean:   mean,
		Stddev: math.Sqrt(ss / float64(len(fs))),
		P50:    Quantile(fs, 0.50),
		P95:    Quantile(fs, 0.95),
		P99:    Quantile(fs, 0.99),
	}
}

// Quantile returns the q-quantile (0..1) of sorted data by linear
// interpolation.
//
// Precondition: the input MUST be sorted ascending — the function
// indexes into it positionally and silently returns garbage otherwise.
// Debug builds (`-tags statsdebug`) verify the precondition and panic
// on unsorted input; release builds skip the O(n) check on this hot
// path.
func Quantile(sorted []float64, q float64) float64 {
	if debugChecks && !sort.Float64sAreSorted(sorted) {
		panic("stats: Quantile called with unsorted input")
	}
	if len(sorted) == 0 {
		return 0
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[len(sorted)-1]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[lo]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// QuantileU64 is Quantile over unsorted uint64 samples.
func QuantileU64(xs []uint64, q float64) float64 {
	fs := make([]float64, len(xs))
	for i, x := range xs {
		fs[i] = float64(x)
	}
	sort.Float64s(fs)
	return Quantile(fs, q)
}

// CountAbove returns how many samples exceed the threshold.
func CountAbove(xs []uint64, threshold uint64) int {
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return n
}

// Histogram bins samples into fixed-width buckets over [min, max].
type Histogram struct {
	Min, Max   uint64
	BucketSize uint64
	Counts     []int
	Under      int // samples below Min
	Over       int // samples above Max
}

// NewHistogram builds a histogram of xs with the given bucket count. It
// returns an error (not a panic) on a degenerate spec — sweep workers
// feed it computed ranges, and one bad trial must not take down the
// whole run.
func NewHistogram(xs []uint64, min, max uint64, buckets int) (*Histogram, error) {
	if buckets <= 0 || max <= min {
		return nil, fmt.Errorf("stats: bad histogram spec [%d,%d)/%d buckets", min, max, buckets)
	}
	size := (max - min + uint64(buckets) - 1) / uint64(buckets)
	if size == 0 {
		size = 1
	}
	h := &Histogram{Min: min, Max: max, BucketSize: size, Counts: make([]int, buckets)}
	for _, x := range xs {
		switch {
		case x < min:
			h.Under++
		case x > max:
			h.Over++
		default:
			// The range is inclusive of max: a sample exactly on the upper
			// bound lands in the final bucket (rounding up the bucket size
			// can also leave the computed index one past the end — clamp).
			i := (x - min) / size
			if i >= uint64(len(h.Counts)) {
				i = uint64(len(h.Counts)) - 1
			}
			h.Counts[i]++
		}
	}
	return h, nil
}

// Render draws the histogram as ASCII rows of at most width characters.
func (h *Histogram) Render(width int) string {
	if width <= 0 {
		width = 50
	}
	peak := 1
	for _, c := range h.Counts {
		if c > peak {
			peak = c
		}
	}
	var sb strings.Builder
	for i, c := range h.Counts {
		lo := h.Min + uint64(i)*h.BucketSize
		// 64-bit intermediate: c*width overflows int32-sized products
		// for very large trial counts.
		bar := strings.Repeat("#", int(int64(c)*int64(width)/int64(peak)))
		fmt.Fprintf(&sb, "%8d-%-8d %6d %s\n", lo, lo+h.BucketSize-1, c, bar)
	}
	if h.Under > 0 {
		fmt.Fprintf(&sb, "%17s %6d (below range)\n", "", h.Under)
	}
	if h.Over > 0 {
		fmt.Fprintf(&sb, "%17s %6d (above range)\n", "", h.Over)
	}
	return sb.String()
}

// String renders the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d min=%.0f p50=%.0f mean=%.1f p95=%.0f p99=%.0f max=%.0f sd=%.1f",
		s.N, s.Min, s.P50, s.Mean, s.P95, s.P99, s.Max, s.Stddev)
}
