//go:build !statsdebug

package stats

// debugChecks gates O(n) precondition checks (e.g. Quantile's sorted
// check) that are too slow for release builds. Enable with
// `go test -tags statsdebug ./...`.
const debugChecks = false
