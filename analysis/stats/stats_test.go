package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]uint64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Min != 1 || s.Max != 5 || s.Mean != 3 || s.P50 != 3 {
		t.Errorf("summary = %+v", s)
	}
	want := math.Sqrt(2)
	if math.Abs(s.Stddev-want) > 1e-9 {
		t.Errorf("stddev = %v, want %v", s.Stddev, want)
	}
	if got := Summarize(nil); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("String() = %q", s.String())
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{10, 20, 30, 40}
	cases := []struct {
		q    float64
		want float64
	}{
		{0, 10}, {1, 40}, {0.5, 25}, {1.5, 40}, {-1, 10},
	}
	for _, c := range cases {
		if got := Quantile(sorted, c.q); got != c.want {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if Quantile(nil, 0.5) != 0 {
		t.Error("empty quantile not 0")
	}
	if QuantileU64([]uint64{40, 10, 30, 20}, 0.5) != 25 {
		t.Error("QuantileU64 does not sort")
	}
}

func TestCountAbove(t *testing.T) {
	xs := []uint64{5, 10, 15, 20}
	if got := CountAbove(xs, 10); got != 2 {
		t.Errorf("CountAbove = %d, want 2", got)
	}
	if got := CountAbove(xs, 0); got != 4 {
		t.Errorf("CountAbove(0) = %d", got)
	}
}

func TestHistogram(t *testing.T) {
	xs := []uint64{0, 5, 10, 15, 95, 100, 200}
	h, err := NewHistogram(xs, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[0] != 2 || h.Counts[1] != 2 || h.Counts[9] != 2 {
		t.Errorf("counts = %v", h.Counts)
	}
	if h.Over != 1 || h.Under != 0 {
		t.Errorf("over/under = %d/%d", h.Over, h.Under)
	}
	out := h.Render(40)
	if !strings.Contains(out, "(above range)") {
		t.Errorf("render missing overflow: %s", out)
	}
}

// A sample exactly equal to max belongs to the final bucket, not to the
// overflow count: [min, max] is inclusive. The old x >= max test dropped
// the range's own upper bound — a histogram over [0, observed-maximum]
// silently misplaced every maximal sample.
func TestHistogramMaxBoundary(t *testing.T) {
	h, err := NewHistogram([]uint64{100, 100, 99, 101}, 0, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if h.Counts[9] != 3 {
		t.Errorf("final bucket = %d, want 3 (two x==max plus 99)", h.Counts[9])
	}
	if h.Over != 1 {
		t.Errorf("over = %d, want 1 (only 101 is above range)", h.Over)
	}
	// Uneven bucket widths (size rounds up): the index of x==max must be
	// clamped into the final bucket, not run past the slice.
	h2, err := NewHistogram([]uint64{7}, 0, 7, 3)
	if err != nil {
		t.Fatal(err)
	}
	if h2.Counts[2] != 1 || h2.Over != 0 {
		t.Errorf("rounded-size boundary: counts=%v over=%d, want final bucket 1, over 0", h2.Counts, h2.Over)
	}
}

func TestHistogramBadSpec(t *testing.T) {
	for _, tc := range []struct {
		min, max uint64
		buckets  int
	}{
		{10, 10, 5},  // empty range
		{20, 10, 5},  // inverted range
		{0, 100, 0},  // no buckets
		{0, 100, -3}, // negative buckets
	} {
		if _, err := NewHistogram(nil, tc.min, tc.max, tc.buckets); err == nil {
			t.Errorf("spec [%d,%d)/%d accepted", tc.min, tc.max, tc.buckets)
		}
	}
}

// Render's bar width must not overflow 32-bit intermediates when counts
// are in the billions (very large sweeps).
func TestHistogramRenderHugeCounts(t *testing.T) {
	h, err := NewHistogram(nil, 0, 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Counts[0] = 2_100_000_000 // > MaxInt32/2: c*width overflows int32
	h.Counts[1] = 1_050_000_000
	out := h.Render(40)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if got := strings.Count(lines[0], "#"); got != 40 {
		t.Errorf("peak bar = %d chars, want 40", got)
	}
	if got := strings.Count(lines[1], "#"); got != 20 {
		t.Errorf("half bar = %d chars, want 20", got)
	}
}

// Property: quantiles are monotone in q.
func TestQuantileMonotone(t *testing.T) {
	f := func(raw []uint64, q1, q2 float64) bool {
		if len(raw) == 0 {
			return true
		}
		q1 = math.Mod(math.Abs(q1), 1)
		q2 = math.Mod(math.Abs(q2), 1)
		if q1 > q2 {
			q1, q2 = q2, q1
		}
		fs := make([]float64, len(raw))
		for i, x := range raw {
			fs[i] = float64(x % 1000)
		}
		s := append([]float64(nil), fs...)
		sortFloats(s)
		return Quantile(s, q1) <= Quantile(s, q2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func sortFloats(fs []float64) {
	for i := 1; i < len(fs); i++ {
		for j := i; j > 0 && fs[j] < fs[j-1]; j-- {
			fs[j], fs[j-1] = fs[j-1], fs[j]
		}
	}
}
