package stats

import (
	"math"
	"math/rand"
	"testing"
)

func approx(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func TestAccumulatorMatchesSummarize(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	xs := make([]uint64, 1000)
	for i := range xs {
		xs[i] = uint64(rng.Intn(10_000))
	}
	acc := NewAccumulator()
	acc.AddSamples(xs)
	got, want := acc.Summary(), Summarize(xs)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max {
		t.Fatalf("n/min/max: got %+v want %+v", got, want)
	}
	// Quantiles are exact (same sorted data, same interpolation).
	if got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
		t.Errorf("quantiles: got %+v want %+v", got, want)
	}
	// Moments agree up to float rounding (Welford vs sum/n).
	if !approx(got.Mean, want.Mean, 1e-9) || !approx(got.Stddev, want.Stddev, 1e-9) {
		t.Errorf("moments: got mean=%v sd=%v want mean=%v sd=%v",
			got.Mean, got.Stddev, want.Mean, want.Stddev)
	}
}

// Accumulators merged chunk-by-chunk must agree with one accumulator
// over the concatenation — the property parallel sweep workers rely on.
func TestAccumulatorMerge(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	all := make([]uint64, 0, 900)
	merged := NewAccumulator()
	for chunk := 0; chunk < 9; chunk++ {
		part := NewAccumulator()
		for i := 0; i < 100; i++ {
			x := uint64(rng.Intn(5_000))
			all = append(all, x)
			part.Add(float64(x))
		}
		merged.Merge(part)
	}
	got, want := merged.Summary(), Summarize(all)
	if got.N != want.N || got.Min != want.Min || got.Max != want.Max ||
		got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
		t.Fatalf("merged summary %+v != direct %+v", got, want)
	}
	if !approx(got.Mean, want.Mean, 1e-9) || !approx(got.Stddev, want.Stddev, 1e-6) {
		t.Errorf("merged moments: got mean=%v sd=%v want mean=%v sd=%v",
			got.Mean, got.Stddev, want.Mean, want.Stddev)
	}
}

func TestAccumulatorMergeEdge(t *testing.T) {
	empty := NewAccumulator()
	if got := empty.Summary(); got.N != 0 {
		t.Errorf("empty summary = %+v", got)
	}
	a := NewAccumulator()
	a.Merge(nil)
	a.Merge(NewAccumulator())
	if a.N() != 0 {
		t.Errorf("merging empties produced n=%d", a.N())
	}
	b := NewAccumulator()
	b.AddSamples([]uint64{3, 1, 2})
	a.Merge(b) // empty.Merge(nonempty) must copy, not share
	b.Add(100)
	if a.N() != 3 || a.Summary().Max != 3 {
		t.Errorf("merge-into-empty aliased: %+v", a.Summary())
	}
}

func TestSummaryMerge(t *testing.T) {
	xa := []uint64{1, 2, 3, 4, 5}
	xb := []uint64{10, 20, 30}
	m := Merge(Summarize(xa), Summarize(xb))
	want := Summarize(append(append([]uint64{}, xa...), xb...))
	if m.N != want.N || m.Min != want.Min || m.Max != want.Max {
		t.Fatalf("merge n/min/max %+v want %+v", m, want)
	}
	if !approx(m.Mean, want.Mean, 1e-9) || !approx(m.Stddev, want.Stddev, 1e-9) {
		t.Errorf("merge moments %+v want %+v", m, want)
	}
	// Identity cases.
	if got := Merge(Summary{}, Summarize(xa)); got != Summarize(xa) {
		t.Errorf("merge with empty lhs = %+v", got)
	}
	if got := Merge(Summarize(xa), Summary{}); got != Summarize(xa) {
		t.Errorf("merge with empty rhs = %+v", got)
	}
}
