// Package static is a multi-pass static analyzer for isa.Program values:
// it triages victim programs for MicroScope replay vulnerabilities
// *before* any simulation runs.
//
// The paper's §6 generalization is that any instruction whose address
// translation the OS can page-fault is a replay handle, and any
// instruction executing in its ROB squash-shadow with a secret-dependent
// resource footprint is leakable. Follow-up defenses (Sakalis et al.'s
// selective delay, Bălucea & Irofti's fence insertion) make this
// classification statically; this package builds the equivalent scanner
// for the simulated ISA in three passes:
//
//  1. CFG construction (cfg.go) — basic blocks from branch / jump /
//     txbegin targets, with a well-formedness Validate that rejects
//     out-of-range targets, malformed operands, and control flow that
//     runs off the end of the program.
//  2. Taint dataflow (taint.go) — a forward fixpoint over the CFG.
//     Sources are declared secret registers and memory ranges (from
//     attack/victim layouts) plus RDRAND results; taint propagates
//     through register dataflow, through loads whose address is secret
//     or points into secret memory, and through implicit flows
//     (destinations written under a secret-dependent branch). A
//     lightweight constant propagation resolves the MovImm-built base
//     addresses victims use, so loads from secret pages are recognized.
//  3. Replay-window classification (findings.go) — every faultable
//     memory access (and txbegin region) is a potential replay handle;
//     instructions within Config.ROBWindow fetched instructions of a
//     handle are in its squash shadow. Each shadowed instruction with a
//     secret-dependent footprint becomes a Finding, labelled with the
//     analysis/sidechan channel class the dynamic attacks use: cache-set
//     for tainted addresses, port contention for divides, latency for
//     subnormal-capable FP divides, random-replay for RDRAND.
//
// The analysis is intraprocedural (the ISA has no calls) and
// over-approximate: taint never shrinks, control dependence is computed
// from reachability, and stores do not untaint memory. See
// docs/static-analysis.md for the limits.
package static

import (
	"fmt"

	"microscope/sim/isa"
)

// DefaultROBWindow matches cpu.DefaultConfig().ROBSize: the deepest a
// younger instruction can sit in the handle's squash shadow. (The value
// is duplicated rather than imported so sim/cpu can depend on this
// package for load-time validation without an import cycle; the
// cross-validation test asserts the two stay equal.)
const DefaultROBWindow = 192

// Config parameterizes an analysis run.
type Config struct {
	// ROBWindow is the squash-shadow depth in fetched instructions,
	// normally the core's ROB size. Zero means DefaultROBWindow.
	ROBWindow int
	// TaintRdrand treats RDRAND results as secrets (their integrity is
	// what the §7.2 bias attack violates). Default on.
	TaintRdrand bool
}

// DefaultConfig returns the configuration matching the default core.
func DefaultConfig() Config {
	return Config{ROBWindow: DefaultROBWindow, TaintRdrand: true}
}

func (c Config) window() int {
	if c.ROBWindow <= 0 {
		return DefaultROBWindow
	}
	return c.ROBWindow
}

// MemRange is a half-open virtual address range [Lo, Hi).
type MemRange struct {
	Lo, Hi uint64
}

// Contains reports whether the 8-byte access at addr overlaps the range.
func (r MemRange) Contains(addr uint64) bool {
	return addr+8 > r.Lo && addr < r.Hi
}

// Secrets declares the analysis taint sources.
type Secrets struct {
	// Regs are registers that hold secret data for the whole program
	// (e.g. the modexp exponent, materialized as an immediate into R5).
	// They are tainted at entry and re-tainted on every write — the
	// register is the secret's architectural home, so whatever the
	// program parks there is treated as secret.
	Regs []isa.Reg
	// Mems are virtual address ranges holding secret data; loads with a
	// resolvable address inside one of them yield tainted values.
	Mems []MemRange
}

func (s Secrets) regSecret(r isa.Reg) bool {
	for _, sr := range s.Regs {
		if sr == r {
			return true
		}
	}
	return false
}

func (s Secrets) memTainted(addr uint64) bool {
	for _, m := range s.Mems {
		if m.Contains(addr) {
			return true
		}
	}
	return false
}

// Analyze runs all three passes over p and returns the report. It fails
// only on malformed programs (the Validate errors); an analyzable
// program always yields a report, possibly with zero findings.
func Analyze(name string, p *isa.Program, sec Secrets, cfg Config) (*Report, error) {
	g, err := BuildCFG(p)
	if err != nil {
		return nil, fmt.Errorf("static: %s: %w", name, err)
	}
	ti := taint(g, sec, cfg)
	r := &Report{
		Program: name,
		Instrs:  p.Len(),
		Window:  cfg.window(),
	}
	r.Findings = findings(g, ti, cfg)
	r.Sort()
	return r, nil
}
