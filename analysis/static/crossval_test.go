package static_test

// Cross-validation: the static scanner must flag the same program points
// the dynamic experiments attack (attack/replay, attack/recipe), for
// every victim family, and stay silent on a constant-time control
// program. This is the tentpole acceptance test: it imports the victims
// and the core config, so it lives in an external package to keep
// analysis/static free of sim/cpu (which imports it back for load-time
// validation).

import (
	"testing"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/isa"
)

// layoutSecrets converts a victim layout's secret declaration into the
// scanner's taint-source form.
func layoutSecrets(l *victim.Layout) static.Secrets {
	s := static.Secrets{Regs: l.SecretRegs}
	for _, m := range l.SecretMems() {
		s.Mems = append(s.Mems, static.MemRange{Lo: m[0], Hi: m[1]})
	}
	return s
}

func analyzeLayout(t *testing.T, l *victim.Layout) *static.Report {
	t.Helper()
	r, err := static.Analyze(l.Name, l.Prog, layoutSecrets(l), static.DefaultConfig())
	if err != nil {
		t.Fatalf("analyze %s: %v", l.Name, err)
	}
	return r
}

// wantChannelAt asserts a finding with the given channel at instruction
// index i.
func wantChannelAt(t *testing.T, r *static.Report, i int, ch sidechan.Channel, what string) {
	t.Helper()
	for _, f := range r.FindingsAt(i) {
		if f.Channel == ch {
			return
		}
	}
	t.Errorf("%s: no %s finding at instruction %d (findings there: %+v)",
		what, ch, i, r.FindingsAt(i))
}

// The window constant is duplicated from the core config to break an
// import cycle; this is the guard that keeps them equal.
func TestDefaultWindowMatchesCore(t *testing.T) {
	if got := cpu.DefaultConfig().ROBSize; static.DefaultROBWindow != got {
		t.Fatalf("static.DefaultROBWindow = %d, cpu ROBSize = %d",
			static.DefaultROBWindow, got)
	}
}

// AES (Fig. 8a): the dynamic cache-set attack monitors the Td-table
// loads; the scanner must flag every one of them as a cache-set leak,
// and must not flag the key-schedule loads it uses as replay handles.
func TestCrossValidateAES(t *testing.T) {
	key := []byte("0123456789abcdef")
	ct := []byte("fedcba9876543210")
	v, err := victim.NewAESVictim(key, ct)
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeLayout(t, v.Layout)
	for id, idx := range v.TdLoads {
		wantChannelAt(t, r, idx, sidechan.ChanCacheSet,
			"aes Td load "+fmtTriple(id))
	}
	for id, idx := range v.RKLoads {
		if fs := r.FindingsAt(idx); len(fs) != 0 {
			t.Errorf("aes rk load %v (handle) flagged: %+v", id, fs)
		}
	}
}

func fmtTriple(id [3]int) string {
	return string(rune('0'+id[0])) + "/" + string(rune('0'+id[1])) + "/" + string(rune('0'+id[2]))
}

// ModExp: the dynamic attack distinguishes exponent bits by whether the
// per-iteration probe line is touched; every transmit load is
// control-dependent on the secret exponent and must be flagged.
func TestCrossValidateModExp(t *testing.T) {
	v, err := victim.NewModExpVictim(5, 0xb, 97, 4)
	if err != nil {
		t.Fatal(err)
	}
	r := analyzeLayout(t, v.Layout)
	for it := 0; it < v.Bits; it++ {
		name := "transmit" + string(rune('0'+it))
		wantChannelAt(t, r, v.Mark(name), sidechan.ChanCacheSet, "modexp "+name)
	}
}

// SingleSecret (Fig. 5): the subnormal-latency attack times the FP
// divide after the count++ handle.
func TestCrossValidateSingleSecret(t *testing.T) {
	l := victim.SingleSecret(3, true)
	r := analyzeLayout(t, l)
	fs := r.FindingsAt(l.Mark("transmit"))
	if len(fs) == 0 {
		t.Fatal("singlesecret transmit divide not flagged")
	}
	f := fs[0]
	if f.Channel != sidechan.ChanLatency || f.Severity != static.SevHigh {
		t.Fatalf("singlesecret transmit = %+v, want high-severity latency", f)
	}
	if f.Handle > l.Mark("transmit") {
		t.Fatalf("handle %d is younger than the transmit", f.Handle)
	}
}

// ControlFlowSecret (Fig. 6): the port-contention attack distinguishes
// the divide arm from the multiply arm; the divides must be flagged as
// port findings, the multiplies (no secret footprint of their own) not.
func TestCrossValidateControlFlow(t *testing.T) {
	l := victim.ControlFlowSecret(true)
	r := analyzeLayout(t, l)
	wantChannelAt(t, r, l.Mark("div0"), sidechan.ChanPort, "controlflow div0")
	wantChannelAt(t, r, l.Mark("div1"), sidechan.ChanPort, "controlflow div1")
	for _, m := range []string{"mul0", "mul1"} {
		if fs := r.FindingsAt(l.Mark(m)); len(fs) != 0 {
			t.Errorf("controlflow %s flagged: %+v", m, fs)
		}
	}
}

// LoopSecret (Fig. 4b): the per-iteration transmit load indexes the
// probe array by the secret value.
func TestCrossValidateLoopSecret(t *testing.T) {
	l := victim.LoopSecret([]byte{3, 1, 4, 1, 5})
	r := analyzeLayout(t, l)
	wantChannelAt(t, r, l.Mark("transmit"), sidechan.ChanCacheSet, "loopsecret transmit")
	if fs := r.FindingsAt(l.Mark("handle")); len(fs) != 0 {
		t.Errorf("loopsecret handle flagged: %+v", fs)
	}
}

// RdrandBias (§7.2): the draw itself is the random-replay finding, and
// the bit-indexed transmit load rides along as a cache-set finding.
func TestCrossValidateRdrandBias(t *testing.T) {
	l := victim.RdrandBias()
	r := analyzeLayout(t, l)
	wantChannelAt(t, r, l.Mark("rdrand"), sidechan.ChanRandom, "rdrand draw")
	wantChannelAt(t, r, l.Mark("transmit"), sidechan.ChanCacheSet, "rdrand transmit")
}

// A constant-time straight-line program — secret loaded, combined with
// arithmetic whose footprint is data-independent, stored to a fixed
// address — must produce zero findings even though it handles secrets.
func TestCrossValidateConstantTimeControl(t *testing.T) {
	const secretVA = 0x0041_0000 // same page the simple victims use
	b := isa.NewBuilder().
		MovImm(isa.R1, secretVA).
		MovImm(isa.R2, 0x0044_0000).
		Load(isa.R3, isa.R1, 0). // secret
		Load(isa.R4, isa.R1, 8). // secret
		Add(isa.R5, isa.R3, isa.R4).
		Xor(isa.R5, isa.R5, isa.R3).
		ShlImm(isa.R5, isa.R5, 1).
		Mul(isa.R5, isa.R5, isa.R4).
		Store(isa.R5, isa.R2, 0). // fixed public address
		Halt()
	sec := static.Secrets{Mems: []static.MemRange{{Lo: secretVA, Hi: secretVA + 4096}}}
	r, err := static.Analyze("control", b.MustBuild(), sec, static.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if r.HasFindings() {
		t.Fatalf("constant-time control program flagged: %+v", r.Findings)
	}
}
