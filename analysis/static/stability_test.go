package static_test

// An external test package: the AES victim (attack/victim) transitively
// imports analysis/static, so this cross-package stability check cannot
// live in the internal test package.

import (
	"bytes"
	"testing"

	"microscope/analysis/static"
	"microscope/attack/victim"
)

// Repeated analyses of the same program must produce byte-identical
// JSON and text encodings: CI diffs golden reports, so any map-order
// or pass-order nondeterminism here is a real bug.
func TestReportEncodingByteStable(t *testing.T) {
	analyze := func() *static.Report {
		v, err := victim.NewAESVictim([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
		if err != nil {
			t.Fatal(err)
		}
		l := v.Layout
		var sec static.Secrets
		sec.Regs = l.SecretRegs
		for _, m := range l.SecretMems() {
			sec.Mems = append(sec.Mems, static.MemRange{Lo: m[0], Hi: m[1]})
		}
		r, err := static.Analyze(l.Name, l.Prog, sec, static.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		return r
	}

	base := analyze()
	baseJSON, err := base.JSON()
	if err != nil {
		t.Fatal(err)
	}
	baseText := base.Text()
	if !base.HasFindings() {
		t.Fatal("AES scan produced no findings; the stability check is vacuous")
	}
	for i := 0; i < 5; i++ {
		r := analyze()
		j, err := r.JSON()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(j, baseJSON) {
			t.Fatalf("run %d: JSON encoding differs from the first run", i)
		}
		if r.Text() != baseText {
			t.Fatalf("run %d: text encoding differs from the first run", i)
		}
	}
}
