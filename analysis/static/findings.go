package static

import (
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/sim/isa"
)

// Pass 3: replay-handle identification and squash-shadow classification.
//
// A replay handle is an instruction whose address translation the OS
// side of the attack can fault at will: any load/store whose address is
// independent of secrets (the attacker must know which page to poke),
// or a txbegin region (evicting its write set aborts and replays it,
// §7.1). From each handle the analyzer walks the CFG forward up to the
// ROB window; every instruction reachable within that many fetched
// instructions sits in the handle's squash shadow and is replayed on
// every fault. Shadowed instructions with a secret-dependent resource
// footprint become findings.

// isHandle reports whether instruction i can serve as a replay handle.
func isHandle(p *isa.Program, i int, ti *taintInfo) bool {
	in := p.Instrs[i]
	switch {
	case in.Op == isa.OpTxBegin:
		return true
	case in.Op.IsMem():
		// A secret-dependent address is not attacker-predictable; such
		// accesses are transmitters, not handles.
		return !ti.in[i].tainted(in.Rs1)
	}
	return false
}

// shadow computes, per instruction, the nearest covering handle and its
// distance in fetched instructions (1..window). dist[i] == 0 means no
// handle covers i.
func shadow(g *CFG, ti *taintInfo, window int) (handle, dist []int) {
	n := g.Prog.Len()
	handle, dist = make([]int, n), make([]int, n)
	for h := 0; h < n; h++ {
		if !ti.reached[h] || !isHandle(g.Prog, h, ti) {
			continue
		}
		// BFS by instruction distance; a window can wrap around loop
		// back-edges (the ROB holds several short iterations at once).
		cur := g.InstrSuccs(h)
		seen := make([]bool, n)
		for d := 1; d <= window && len(cur) > 0; d++ {
			var next []int
			for _, i := range cur {
				if seen[i] {
					continue
				}
				seen[i] = true
				if dist[i] == 0 || d < dist[i] {
					handle[i], dist[i] = h, d
				}
				next = append(next, g.InstrSuccs(i)...)
			}
			cur = next
		}
	}
	return handle, dist
}

// classify decides whether shadowed instruction i leaks, and over which
// channel. The channel labels follow the analysis/sidechan taxonomy and
// mirror the dynamic attacks: cache-set (AES T-tables, §6.2), latency
// (FP subnormal, Fig. 5), port contention (Fig. 6), random-replay
// (RDRAND bias, §7.2).
func classify(p *isa.Program, i int, ti *taintInfo) (sidechan.Channel, Severity, string, bool) {
	in := p.Instrs[i]
	st := ti.in[i]
	ta, tb := st.tainted(in.Rs1), st.tainted(in.Rs2)
	switch {
	case in.Op == isa.OpRdrand && ti.cfg.TaintRdrand:
		return sidechan.ChanRandom, SevHigh,
			"RDRAND draw is re-executed on every replay: the attacker observes each value transiently and squashes until one suits (integrity bias)", true
	case in.Op.IsMem() && ta:
		return sidechan.ChanCacheSet, SevHigh,
			"memory address derived from secret data selects a cache set the attacker probes", true
	case in.Op == isa.OpFDiv && (ta || tb):
		return sidechan.ChanLatency, SevHigh,
			"FP divide on a secret-derived operand: the subnormal microcode assist leaks through latency", true
	case in.Op == isa.OpDiv && (ta || tb):
		return sidechan.ChanPort, SevMedium,
			"integer divide on a secret-derived operand occupies the non-pipelined divider", true
	case ti.ctrl[i]:
		switch {
		case in.Op == isa.OpDiv || in.Op == isa.OpFDiv:
			return sidechan.ChanPort, SevMedium,
				"divide executes on only one side of a secret-dependent branch; divider-port contention reveals the side", true
		case in.Op.IsMem():
			return sidechan.ChanCacheSet, SevMedium,
				"memory access guarded by a secret-dependent branch; its cache footprint reveals the branch", true
		case in.Op == isa.OpRdrand:
			return sidechan.ChanRandom, SevMedium,
				"RDRAND guarded by a secret-dependent branch", true
		}
	}
	return sidechan.ChanNone, SevLow, "", false
}

// findings runs the shadow walk and classifier over the whole program.
func findings(g *CFG, ti *taintInfo, cfg Config) []Finding {
	handle, dist := shadow(g, ti, cfg.window())
	var out []Finding
	for i := range g.Prog.Instrs {
		if dist[i] == 0 || !ti.reached[i] {
			continue
		}
		ch, sev, reason, ok := classify(g.Prog, i, ti)
		if !ok {
			continue
		}
		h := handle[i]
		out = append(out, Finding{
			Index:       i,
			Instr:       g.Prog.Instrs[i].String(),
			Channel:     ch,
			Severity:    sev,
			Handle:      h,
			HandleInstr: g.Prog.Instrs[h].String(),
			Distance:    dist[i],
			Reason:      reason,
		})
	}
	return out
}

// TransmitPoint is an instruction the taint analysis classifies as a
// transmitter, regardless of replay-handle coverage. Findings are the
// subset of transmit points sitting in some handle's squash shadow;
// the dynamic sanitizer (sim/sanitizer) observes transmits wherever
// they execute, so its reconciliation pass needs the unscoped set to
// tell "transmitter outside every replay window" (understood, not
// replayable) from "transmitter the static taint pass missed" (a bug).
type TransmitPoint struct {
	Index    int              `json:"index"`
	Instr    string           `json:"instr"`
	Channel  sidechan.Channel `json:"channel"`
	Severity Severity         `json:"severity"`
	// Reached reports static reachability from the entry point.
	Reached bool `json:"reached"`
	// Shadowed reports coverage by some replay handle's squash shadow —
	// exactly the transmit points that are also Findings.
	Shadowed bool `json:"shadowed"`
}

// TransmitPoints classifies every instruction of p with the same taint
// fixpoint and channel classifier as Analyze, but without the
// replay-handle shadow filter.
func TransmitPoints(p *isa.Program, sec Secrets, cfg Config) ([]TransmitPoint, error) {
	g, err := BuildCFG(p)
	if err != nil {
		return nil, err
	}
	ti := taint(g, sec, cfg)
	_, dist := shadow(g, ti, cfg.window())
	var out []TransmitPoint
	for i := range p.Instrs {
		ch, sev, _, ok := classify(p, i, ti)
		if !ok {
			continue
		}
		out = append(out, TransmitPoint{
			Index:    i,
			Instr:    p.Instrs[i].String(),
			Channel:  ch,
			Severity: sev,
			Reached:  ti.reached[i],
			Shadowed: dist[i] > 0 && ti.reached[i],
		})
	}
	return out, nil
}

// Severity ranks a finding.
type Severity int

// Severity levels.
const (
	SevLow Severity = iota
	SevMedium
	SevHigh
)

// String returns the report label.
func (s Severity) String() string {
	switch s {
	case SevLow:
		return "low"
	case SevMedium:
		return "medium"
	case SevHigh:
		return "high"
	}
	return fmt.Sprintf("severity(%d)", int(s))
}

// MarshalText renders the severity for JSON reports.
func (s Severity) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a severity label, inverting MarshalText.
func (s *Severity) UnmarshalText(b []byte) error {
	for v := SevLow; v <= SevHigh; v++ {
		if v.String() == string(b) {
			*s = v
			return nil
		}
	}
	return fmt.Errorf("static: unknown severity %q", b)
}
