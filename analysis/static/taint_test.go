package static

import (
	"testing"

	"microscope/analysis/sidechan"
	"microscope/sim/isa"
)

const secretPage = 0x4000_0000

func analyzeSrc(t *testing.T, src string, sec Secrets) *Report {
	t.Helper()
	r, err := Analyze("test", mustAsm(t, src), sec, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func secretMem() Secrets {
	return Secrets{Mems: []MemRange{{Lo: secretPage, Hi: secretPage + 4096}}}
}

// A load from declared secret memory taints the result; using it as an
// address is a cache-set finding in the shadow of the handle load.
func TestTaintSecretLoadToAddress(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000   ; secret base
		movi r2, 0x1000       ; public base
		ld   r3, 0(r2)        ; replay handle (public)
		ld   r4, 8(r1)        ; secret value
		shli r4, r4, 6
		add  r4, r4, r2
		ld   r5, 0(r4)        ; transmit: secret-indexed
		halt
	`, secretMem())
	fs := r.FindingsAt(6)
	if len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet || fs[0].Severity != SevHigh {
		t.Fatalf("transmit findings = %+v", fs)
	}
	if fs[0].Handle != 2 && fs[0].Handle != 3 {
		t.Errorf("handle = %d, want a preceding public load", fs[0].Handle)
	}
	// The secret load itself has an untainted address: no finding there.
	if fs := r.FindingsAt(3); len(fs) != 0 {
		t.Errorf("secret load flagged: %+v", fs)
	}
}

// Constant folding must see through arithmetic: base built via shifted
// adds still lands in the secret range.
func TestConstantPropagationResolvesComputedBase(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x4000
		shli r1, r1, 16      ; 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		ld   r3, 0(r1)       ; loads secret
		add  r4, r3, r3
		add  r4, r4, r2
		ld   r5, 0(r4)       ; tainted address
		halt
	`, secretMem())
	if fs := r.FindingsAt(7); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet {
		t.Fatalf("computed-base transmit not flagged: %+v", r.Findings)
	}
}

// Base-plus-unknown-offset (vBased) provenance: indexing into the secret
// page with a runtime value still reads secret memory.
func TestBasedProvenanceLoadsAreSecret(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		ld   r6, 8(r2)       ; runtime index (public)
		shli r6, r6, 3
		add  r6, r6, r1      ; &secret[i]
		ld   r3, 0(r6)       ; loads secret (based address)
		shli r3, r3, 6
		add  r3, r3, r2
		ld   r5, 0(r3)       ; transmit
		halt
	`, secretMem())
	if fs := r.FindingsAt(9); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet {
		t.Fatalf("based-provenance transmit not flagged: %+v", r.Findings)
	}
}

// Implicit flow: a branch on secret data taints both arms' footprints
// and the registers they write.
func TestControlDependenceTaint(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		ld   r3, 0(r1)       ; secret
		bne  r3, r0, one
		mul  r4, r2, r2      ; arm 0
		jmp  join
	one:	fdiv f2, f0, f1   ; arm 1
	join:	st   r4, 16(r2)
		halt
	`, secretMem())
	if fs := r.FindingsAt(7); len(fs) != 1 || fs[0].Channel != sidechan.ChanPort {
		t.Fatalf("guarded fdiv not flagged as port contention: %+v", r.Findings)
	}
	// The store at the join executes on both paths: not control-dependent.
	if fs := r.FindingsAt(8); len(fs) != 0 {
		t.Errorf("join store flagged: %+v", fs)
	}
	// r4 was written under the secret branch: storing it is fine
	// (constant address), but using it as an address is not.
	r2 := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)
		ld   r3, 0(r1)
		beq  r3, r0, join
		addi r4, r4, 64
	join:	add  r5, r4, r2
		ld   r6, 0(r5)       ; address depends on which arm ran
		halt
	`, secretMem())
	if fs := r2.FindingsAt(7); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet {
		t.Fatalf("implicitly-tainted address not flagged: %+v", r2.Findings)
	}
}

// Nested branches: an instruction in the inner arm of a public branch
// that is itself nested under a secret branch is control-dependent on
// the secret, and a register written there carries the implicit taint
// out of the nest.
func TestImplicitFlowNestedBranches(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		ld   r3, 0(r1)       ; secret
		ld   r7, 8(r2)       ; public selector
		beq  r3, r0, join    ; outer: secret branch
		beq  r7, r0, inner   ; inner: public branch, secret region
		addi r4, r4, 64      ; nested arm: r4 implicitly secret
		st   r7, 24(r2)      ; nested arm: guarded footprint
	inner:	mul  r6, r2, r2   ; secret region, but no channel
	join:	add  r5, r4, r2
		ld   r8, 0(r5)       ; transmit: address says which arms ran
		halt
	`, secretMem())
	// The store inside the nest is guarded by the (outer) secret branch.
	if fs := r.FindingsAt(8); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet || fs[0].Severity != SevMedium {
		t.Fatalf("nested guarded store not flagged as control-dependent: %+v", r.Findings)
	}
	// The channel-free mul must not be flagged even though it is
	// control-dependent on the secret.
	if fs := r.FindingsAt(9); len(fs) != 0 {
		t.Errorf("channel-free mul flagged: %+v", fs)
	}
	// r4 escaped the nest with implicit taint: the transmit's address is
	// secret-derived data, not merely guarded.
	if fs := r.FindingsAt(11); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet || fs[0].Severity != SevHigh {
		t.Fatalf("escaped implicit taint not flagged on the transmit: %+v", r.Findings)
	}
}

// Loop back-edge: when the trip count depends on a secret, the counter
// incremented in the body absorbs the branch taint across the back edge
// (a fixpoint, not a single forward pass), and so does the body's own
// footprint.
func TestImplicitFlowLoopBackEdge(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		ld   r3, 0(r1)       ; secret bound
		movi r4, 0
	loop:	addi r4, r4, 1    ; counter: implicitly secret via the back edge
		st   r4, 16(r2)      ; body footprint: guarded by the exit test
		bne  r4, r3, loop    ; secret-dependent exit
		shli r5, r4, 6
		add  r5, r5, r2
		ld   r6, 0(r5)       ; transmit: trip count is the secret
		halt
	`, secretMem())
	// The body store repeats once per iteration: control-dependent.
	if fs := r.FindingsAt(6); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet || fs[0].Severity != SevMedium {
		t.Fatalf("loop-body store not flagged as control-dependent: %+v", r.Findings)
	}
	// After the loop the counter equals the secret bound; using it as an
	// address is a data-tainted transmit.
	if fs := r.FindingsAt(10); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet || fs[0].Severity != SevHigh {
		t.Fatalf("post-loop transmit not flagged: %+v", r.Findings)
	}
}

// Secret-home registers stay tainted across writes (the modexp exponent
// is materialized with movi).
func TestSecretRegisterSticky(t *testing.T) {
	r := analyzeSrc(t, `
		movi r5, 0xb         ; secret exponent (immediate)
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		shri r6, r5, 1
		andi r6, r6, 1
		shli r6, r6, 6
		add  r6, r6, r2
		ld   r7, 0(r6)       ; transmit
		halt
	`, Secrets{Regs: []isa.Reg{isa.R5}})
	if fs := r.FindingsAt(7); len(fs) != 1 || fs[0].Channel != sidechan.ChanCacheSet {
		t.Fatalf("sticky-register transmit not flagged: %+v", r.Findings)
	}
}

// Subnormal channel: FP divide on a secret-derived operand.
func TestSubnormalLatencyChannel(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		fld  f0, 0(r1)       ; secret float
		fdiv f2, f0, f1      ; transmit via latency
		halt
	`, secretMem())
	if fs := r.FindingsAt(4); len(fs) != 1 || fs[0].Channel != sidechan.ChanLatency || fs[0].Severity != SevHigh {
		t.Fatalf("fdiv latency not flagged: %+v", r.Findings)
	}
}

// RDRAND in a squash shadow is a random-replay finding even with no
// declared secrets.
func TestRdrandFinding(t *testing.T) {
	r := analyzeSrc(t, `
		movi r2, 0x1000
		ld   r9, 0(r2)       ; handle
		rdrand r4
		st   r4, 8(r2)
		halt
	`, Secrets{})
	if fs := r.FindingsAt(2); len(fs) != 1 || fs[0].Channel != sidechan.ChanRandom {
		t.Fatalf("rdrand not flagged: %+v", r.Findings)
	}
	// With TaintRdrand off it is not reported.
	cfg := DefaultConfig()
	cfg.TaintRdrand = false
	p := mustAsm(t, "movi r2, 0x1000\nld r9, 0(r2)\nrdrand r4\nst r4, 8(r2)\nhalt")
	rep, err := Analyze("t", p, Secrets{}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HasFindings() {
		t.Fatalf("TaintRdrand=false still reports: %+v", rep.Findings)
	}
}

// The ROB window bounds the shadow: a transmit farther than ROBWindow
// fetched instructions from every handle is unreachable by a replay.
func TestWindowBoundsShadow(t *testing.T) {
	src := `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)       ; the only handle
		ld   r3, 0(r1)       ; secret
		shli r3, r3, 6
		add  r3, r3, r2
`
	for i := 0; i < 40; i++ {
		src += "\t\tmovi r8, 1\n" // padding
	}
	src += `
		ld   r5, 0(r3)       ; transmit at distance ~44
		halt
	`
	p := mustAsm(t, src)
	small := DefaultConfig()
	small.ROBWindow = 8
	r, err := Analyze("t", p, secretMem(), small)
	if err != nil {
		t.Fatal(err)
	}
	if r.HasFindings() {
		t.Fatalf("window 8 should not reach the transmit: %+v", r.Findings)
	}
	big := DefaultConfig()
	big.ROBWindow = 64
	r, err = Analyze("t", p, secretMem(), big)
	if err != nil {
		t.Fatal(err)
	}
	if !r.HasFindings() {
		t.Fatal("window 64 should reach the transmit")
	}
}

// Report renderers are deterministic and well-formed.
func TestReportRenderers(t *testing.T) {
	r := analyzeSrc(t, `
		movi r1, 0x40000000
		movi r2, 0x1000
		ld   r9, 0(r2)
		ld   r3, 0(r1)
		shli r3, r3, 6
		add  r3, r3, r2
		ld   r5, 0(r3)
		halt
	`, secretMem())
	txt := r.Text()
	if txt == "" || r.Text() != txt {
		t.Fatal("text rendering unstable")
	}
	j1, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	j2, _ := r.JSON()
	if string(j1) != string(j2) {
		t.Fatal("JSON rendering unstable")
	}
	counts := r.ChannelCounts()
	if counts[sidechan.ChanCacheSet] == 0 {
		t.Fatalf("channel counts: %+v", counts)
	}
}
