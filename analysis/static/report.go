package static

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"

	"microscope/analysis/sidechan"
)

// Finding is one replay-leakable instruction: a program point with a
// secret-dependent resource footprint inside some replay handle's squash
// shadow.
type Finding struct {
	// Index is the instruction index of the leaking instruction; Instr
	// is its disassembly.
	Index int    `json:"index"`
	Instr string `json:"instr"`
	// Channel is the leak-channel class (analysis/sidechan taxonomy).
	Channel sidechan.Channel `json:"channel"`
	// Severity ranks the finding.
	Severity Severity `json:"severity"`
	// Handle is the nearest covering replay handle and Distance how many
	// fetched instructions separate them (1..window).
	Handle      int    `json:"handle"`
	HandleInstr string `json:"handle_instr"`
	Distance    int    `json:"distance"`
	// Reason explains the classification.
	Reason string `json:"reason"`
}

// Report is the scanner output for one program.
type Report struct {
	Program  string    `json:"program"`
	Instrs   int       `json:"instrs"`
	Window   int       `json:"window"`
	Findings []Finding `json:"findings"`
}

// HasFindings reports whether the scan surfaced anything.
func (r *Report) HasFindings() bool { return len(r.Findings) > 0 }

// Sort orders the findings canonically: by instruction index, then
// channel, then descending severity, then covering handle. Analyze
// calls it before returning, so reports — and their JSON and text
// encodings — are byte-stable regardless of how the analysis passes
// enumerate findings.
func (r *Report) Sort() {
	sort.SliceStable(r.Findings, func(i, j int) bool {
		a, b := r.Findings[i], r.Findings[j]
		switch {
		case a.Index != b.Index:
			return a.Index < b.Index
		case a.Channel != b.Channel:
			return a.Channel < b.Channel
		case a.Severity != b.Severity:
			return a.Severity > b.Severity
		}
		return a.Handle < b.Handle
	})
}

// FindingsAt returns the findings anchored at instruction index i.
func (r *Report) FindingsAt(i int) []Finding {
	var out []Finding
	for _, f := range r.Findings {
		if f.Index == i {
			out = append(out, f)
		}
	}
	return out
}

// ChannelCounts tallies findings per channel class, indexed by channel.
func (r *Report) ChannelCounts() [sidechan.NumChannels]int {
	var counts [sidechan.NumChannels]int
	for _, f := range r.Findings {
		if int(f.Channel) < len(counts) {
			counts[f.Channel]++
		}
	}
	return counts
}

// JSON renders the report as indented JSON.
func (r *Report) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// Text renders the report for terminals: a header, one entry per
// finding, and a per-channel summary. Output is deterministic (findings
// are emitted in instruction order).
func (r *Report) Text() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "program %s: %d instrs, ROB window %d\n", r.Program, r.Instrs, r.Window)
	if !r.HasFindings() {
		sb.WriteString("no replay-leakable instructions found\n")
		return sb.String()
	}
	fmt.Fprintf(&sb, "%d replay-leakable instruction(s):\n", len(r.Findings))
	for _, f := range r.Findings {
		fmt.Fprintf(&sb, "  @%-4d %-24s %-15s %-6s handle @%d (%s) +%d\n",
			f.Index, f.Instr, f.Channel, f.Severity, f.Handle, f.HandleInstr, f.Distance)
		fmt.Fprintf(&sb, "        %s\n", f.Reason)
	}
	counts := r.ChannelCounts()
	sb.WriteString("summary:")
	for c, n := range counts {
		if n > 0 {
			fmt.Fprintf(&sb, " %s=%d", sidechan.Channel(c), n)
		}
	}
	sb.WriteString("\n")
	return sb.String()
}
