package static

import (
	"fmt"

	"microscope/sim/isa"
)

// Pass 1: control-flow graph construction and well-formedness.

// Block is a basic block: instructions [Start, End) with no internal
// control transfer, and Succs naming successor blocks.
type Block struct {
	Start, End int
	Succs      []int
}

// CFG is the instruction- and block-level control-flow graph of a
// program.
type CFG struct {
	Prog *isa.Program
	// Blocks in ascending Start order; Blocks[0].Start == 0.
	Blocks []Block
	// BlockOf maps an instruction index to its block index.
	BlockOf []int
	// txTargets are the abort-handler targets of every OpTxBegin, the
	// over-approximated successor set of OpTxAbort.
	txTargets []int
}

// InstrSuccs returns the instruction-level successors of index i.
// OpTxAbort is over-approximated as jumping to any txbegin abort handler
// in the program.
func (g *CFG) InstrSuccs(i int) []int {
	return instrSuccs(g.Prog, i, g.txTargets)
}

func instrSuccs(p *isa.Program, i int, txTargets []int) []int {
	in := p.Instrs[i]
	switch {
	case in.Op == isa.OpHalt:
		return nil
	case in.Op == isa.OpJmp:
		return []int{in.Target}
	case in.Op.IsCondBranch(), in.Op == isa.OpTxBegin:
		if in.Target == i+1 {
			return []int{i + 1}
		}
		return []int{i + 1, in.Target}
	case in.Op == isa.OpTxAbort:
		return txTargets
	default:
		return []int{i + 1}
	}
}

// Validate checks that p is well formed for execution: every instruction
// passes the ISA-level checks (defined opcode, register classes, in-range
// targets), control cannot fall off the end of the program, and txabort
// has an abort handler to roll back to. sim/cpu runs this at program
// load, turning what used to be execute-time panics into descriptive
// errors.
func Validate(p *isa.Program) error {
	if p == nil {
		return fmt.Errorf("static: nil program")
	}
	if p.Len() == 0 {
		return fmt.Errorf("static: empty program")
	}
	if err := p.Validate(); err != nil {
		return err
	}
	txTargets := txBeginTargets(p)
	for i := range p.Instrs {
		if p.Instrs[i].Op == isa.OpTxAbort && len(txTargets) == 0 {
			return fmt.Errorf("static: instr %d (%s): txabort with no txbegin abort handler in program",
				i, p.Instrs[i])
		}
		for _, s := range instrSuccs(p, i, txTargets) {
			if s >= p.Len() {
				return fmt.Errorf("static: instr %d (%s): control falls off the end of the program (missing halt or jmp)",
					i, p.Instrs[i])
			}
		}
	}
	return nil
}

func txBeginTargets(p *isa.Program) []int {
	var ts []int
	for _, in := range p.Instrs {
		if in.Op == isa.OpTxBegin {
			ts = append(ts, in.Target)
		}
	}
	return ts
}

// BuildCFG validates p and partitions it into basic blocks.
func BuildCFG(p *isa.Program) (*CFG, error) {
	if err := Validate(p); err != nil {
		return nil, err
	}
	n := p.Len()
	txTargets := txBeginTargets(p)

	// Leaders: entry, every control-transfer target, and every
	// instruction following a control transfer.
	leader := make([]bool, n)
	leader[0] = true
	for i, in := range p.Instrs {
		switch {
		case in.Op.IsBranch(), in.Op == isa.OpTxBegin, in.Op == isa.OpTxAbort, in.Op == isa.OpHalt:
			if i+1 < n {
				leader[i+1] = true
			}
		}
		if in.Op.IsBranch() || in.Op == isa.OpTxBegin {
			leader[in.Target] = true
		}
	}
	for _, t := range txTargets {
		leader[t] = true
	}

	g := &CFG{Prog: p, BlockOf: make([]int, n), txTargets: txTargets}
	for i := 0; i < n; i++ {
		if leader[i] {
			g.Blocks = append(g.Blocks, Block{Start: i})
		}
		g.BlockOf[i] = len(g.Blocks) - 1
	}
	for b := range g.Blocks {
		if b+1 < len(g.Blocks) {
			g.Blocks[b].End = g.Blocks[b+1].Start
		} else {
			g.Blocks[b].End = n
		}
		last := g.Blocks[b].End - 1
		seen := map[int]bool{}
		for _, s := range instrSuccs(p, last, txTargets) {
			sb := g.BlockOf[s]
			if !seen[sb] {
				seen[sb] = true
				g.Blocks[b].Succs = append(g.Blocks[b].Succs, sb)
			}
		}
	}
	return g, nil
}

// BranchRegion is the control-dependent region of one conditional
// branch: the instructions reachable from exactly one of its two
// successors (symmetric difference — the post-dominated join is
// reachable from both and excluded). This is the same region
// construction the taint pass uses for implicit flows; sim/sanitizer
// consumes it so the dynamic sanitizer's implicit-taint windows agree
// with the static pass instruction for instruction.
type BranchRegion struct {
	// PC is the branch's instruction index.
	PC int
	// Region[i] reports whether instruction i is control-dependent on
	// the branch.
	Region []bool
}

// BranchRegions returns the control-dependent region of every
// two-successor conditional branch in the program, in ascending PC
// order. Branches whose successors coincide (target == fallthrough)
// have no region and are omitted.
func (g *CFG) BranchRegions() []BranchRegion {
	var out []BranchRegion
	for i, in := range g.Prog.Instrs {
		if !in.Op.IsCondBranch() {
			continue
		}
		succs := g.InstrSuccs(i)
		if len(succs) < 2 {
			continue
		}
		r1, r2 := g.reachableFrom(succs[0]), g.reachableFrom(succs[1])
		region := make([]bool, g.Prog.Len())
		for j := range region {
			region[j] = r1[j] != r2[j]
		}
		out = append(out, BranchRegion{PC: i, Region: region})
	}
	return out
}

// reachableFrom returns the instruction set reachable from start
// (inclusive) by following instruction-level successors.
func (g *CFG) reachableFrom(start int) []bool {
	seen := make([]bool, g.Prog.Len())
	stack := []int{start}
	seen[start] = true
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, s := range g.InstrSuccs(i) {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return seen
}
