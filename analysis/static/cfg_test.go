package static

import (
	"strings"
	"testing"

	"microscope/sim/isa"
)

func mustAsm(t *testing.T, src string) *isa.Program {
	t.Helper()
	p, err := isa.TryAssemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return p
}

func TestValidateRejectsFallOffEnd(t *testing.T) {
	p := mustAsm(t, `
		movi r1, 1
		addi r1, r1, 2
	`)
	err := Validate(p)
	if err == nil || !strings.Contains(err.Error(), "falls off the end") {
		t.Fatalf("want falls-off-end error, got %v", err)
	}
	// A trailing unconditional control transfer is fine.
	if err := Validate(mustAsm(t, "loop: jmp loop")); err != nil {
		t.Fatalf("jmp-terminated program rejected: %v", err)
	}
	if err := Validate(mustAsm(t, "movi r1, 1\nhalt")); err != nil {
		t.Fatalf("halt-terminated program rejected: %v", err)
	}
}

func TestValidateRejectsBadTargets(t *testing.T) {
	p := &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpJmp, Target: 7},
		{Op: isa.OpHalt},
	}}
	if err := Validate(p); err == nil {
		t.Fatal("out-of-range jump target accepted")
	}
	p = &isa.Program{Instrs: []isa.Instr{
		{Op: isa.Op(200), Rd: isa.R1},
		{Op: isa.OpHalt},
	}}
	if err := Validate(p); err == nil {
		t.Fatal("invalid opcode accepted")
	}
	p = &isa.Program{Instrs: []isa.Instr{
		{Op: isa.OpTxAbort},
		{Op: isa.OpHalt},
	}}
	if err := Validate(p); err == nil {
		t.Fatal("txabort without txbegin accepted")
	}
	if err := Validate(nil); err == nil {
		t.Fatal("nil program accepted")
	}
	if err := Validate(&isa.Program{}); err == nil {
		t.Fatal("empty program accepted")
	}
}

func TestBuildCFGBlocks(t *testing.T) {
	p := mustAsm(t, `
		movi r1, 1          ; 0
		beq  r1, r0, skip   ; 1
		addi r1, r1, 1      ; 2
	skip:	halt            ; 3
	`)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Blocks) != 3 {
		t.Fatalf("want 3 blocks, got %d: %+v", len(g.Blocks), g.Blocks)
	}
	// Block 0 = [0,2) -> block of 2 and block of 3.
	b0 := g.Blocks[g.BlockOf[0]]
	if b0.Start != 0 || b0.End != 2 || len(b0.Succs) != 2 {
		t.Fatalf("entry block %+v", b0)
	}
	if g.BlockOf[2] == g.BlockOf[3] {
		t.Fatal("fallthrough and join share a block")
	}
	// The conditional branch has two instruction-level successors.
	succs := g.InstrSuccs(1)
	if len(succs) != 2 || succs[0] != 2 || succs[1] != 3 {
		t.Fatalf("branch succs = %v", succs)
	}
	if s := g.InstrSuccs(3); len(s) != 0 {
		t.Fatalf("halt succs = %v", s)
	}
}

func TestCFGTxBeginAbortEdges(t *testing.T) {
	p := mustAsm(t, `
		txbegin abort
		movi r1, 1
		txabort
		txend
		halt
	abort:	halt
	`)
	g, err := BuildCFG(p)
	if err != nil {
		t.Fatal(err)
	}
	if s := g.InstrSuccs(0); len(s) != 2 {
		t.Fatalf("txbegin succs = %v, want fallthrough+handler", s)
	}
	// txabort is over-approximated as jumping to every abort handler.
	s := g.InstrSuccs(2)
	if len(s) != 1 || s[0] != 5 {
		t.Fatalf("txabort succs = %v, want [5]", s)
	}
}
