package static

import "microscope/sim/isa"

// Pass 2: forward taint dataflow with lightweight constant/provenance
// propagation, to a fixpoint over the CFG.
//
// Each register carries two abstract facts:
//
//   - taint: the value is derived from declared secrets (explicitly
//     through dataflow, or implicitly by being written under a
//     secret-dependent branch);
//   - an abstract value: vExact (a known 64-bit constant — victims build
//     data-page bases with MovImm, so most addresses resolve), vBased (a
//     known base plus an unknown additive offset — a table base indexed
//     by a runtime value), or vUnknown.
//
// The abstract value is what lets the analyzer decide whether a load
// reads secret memory (its address lands in a Secrets.Mems range) and
// whether a memory access is a usable replay handle (address independent
// of secrets).

type valKind uint8

const (
	vUnknown valKind = iota
	vExact           // value is exactly v
	vBased           // value is v plus an unknown offset (same data page in practice)
)

type absVal struct {
	kind valKind
	v    uint64
}

func exactVal(v uint64) absVal { return absVal{kind: vExact, v: v} }

// regState is the dataflow fact at a program point.
type regState struct {
	taint uint32 // bitmask over the 32 architectural registers
	vals  [isa.NumRegs]absVal
}

func regBit(r isa.Reg) uint32 {
	return 1 << uint(r)
}

func (st *regState) tainted(r isa.Reg) bool {
	if !r.Valid() {
		return false
	}
	return st.taint&regBit(r) != 0
}

func (st *regState) val(r isa.Reg) absVal {
	if !r.Valid() {
		return absVal{}
	}
	return st.vals[r]
}

func (st *regState) set(r isa.Reg, v absVal, tainted bool) {
	if !r.Valid() {
		return
	}
	st.vals[r] = v
	if tainted {
		st.taint |= regBit(r)
	} else {
		st.taint &^= regBit(r)
	}
}

// mergeInto joins src into dst (set union for taint, lattice meet for
// values) and reports whether dst changed.
func mergeInto(dst *regState, src *regState) bool {
	changed := false
	if dst.taint|src.taint != dst.taint {
		dst.taint |= src.taint
		changed = true
	}
	for i := range dst.vals {
		m := meetVal(dst.vals[i], src.vals[i])
		if m != dst.vals[i] {
			dst.vals[i] = m
			changed = true
		}
	}
	return changed
}

func meetVal(a, b absVal) absVal {
	switch {
	case a == b:
		return a
	case a.kind == vUnknown || b.kind == vUnknown:
		return absVal{}
	case a.v == b.v:
		// Same base, different precision: keep the weaker claim.
		return absVal{kind: vBased, v: a.v}
	default:
		return absVal{}
	}
}

// addVals models pointer arithmetic: adding a known offset preserves
// exactness; adding an unknown offset to a known base keeps the base as
// provenance (vBased). Two distinct bases, or no base at all, is unknown.
func addVals(a, b absVal) absVal {
	switch {
	case a.kind == vExact && b.kind == vExact:
		return exactVal(a.v + b.v)
	case a.kind != vUnknown && b.kind == vExact:
		return absVal{kind: vBased, v: a.v + b.v}
	case a.kind == vExact && b.kind != vUnknown:
		return absVal{kind: vBased, v: a.v + b.v}
	case a.kind != vUnknown && b.kind == vUnknown:
		return absVal{kind: vBased, v: a.v}
	case a.kind == vUnknown && b.kind != vUnknown:
		return absVal{kind: vBased, v: b.v}
	default:
		return absVal{}
	}
}

// step applies one instruction's transfer function to st. ctrlDep marks
// instructions control-dependent on a secret branch: their destinations
// are tainted regardless of operands (implicit flow).
func step(st *regState, in isa.Instr, ctrlDep bool, sec Secrets, cfg Config) {
	d := in.Dest()
	if d == isa.NoReg {
		return // stores, branches, fences, tx markers: no register effect
	}
	a, b := st.val(in.Rs1), st.val(in.Rs2)
	ta, tb := st.tainted(in.Rs1), st.tainted(in.Rs2)

	var v absVal // zero value: unknown
	t := false
	exact2 := func(f func(x, y uint64) uint64) {
		if a.kind == vExact && b.kind == vExact {
			v = exactVal(f(a.v, b.v))
		}
		t = ta || tb
	}
	exact1 := func(f func(x uint64) uint64) {
		if a.kind == vExact {
			v = exactVal(f(a.v))
		}
		t = ta
	}

	switch in.Op {
	case isa.OpMovImm, isa.OpFLoadImm:
		v = exactVal(uint64(in.Imm))
	case isa.OpMov, isa.OpFMov:
		v, t = a, ta
	case isa.OpAdd:
		v, t = addVals(a, b), ta || tb
	case isa.OpAddImm:
		v, t = addVals(a, exactVal(uint64(in.Imm))), ta
	case isa.OpSub:
		exact2(func(x, y uint64) uint64 { return x - y })
		if v.kind == vUnknown && a.kind != vUnknown && b.kind == vExact {
			v = absVal{kind: vBased, v: a.v - b.v}
		}
	case isa.OpAnd:
		exact2(func(x, y uint64) uint64 { return x & y })
	case isa.OpAndImm:
		exact1(func(x uint64) uint64 { return x & uint64(in.Imm) })
	case isa.OpOr:
		exact2(func(x, y uint64) uint64 { return x | y })
	case isa.OpXor:
		exact2(func(x, y uint64) uint64 { return x ^ y })
	case isa.OpShl:
		exact2(func(x, y uint64) uint64 { return x << (y & 63) })
	case isa.OpShlImm:
		exact1(func(x uint64) uint64 { return x << (uint64(in.Imm) & 63) })
	case isa.OpShr:
		exact2(func(x, y uint64) uint64 { return x >> (y & 63) })
	case isa.OpShrImm:
		exact1(func(x uint64) uint64 { return x >> (uint64(in.Imm) & 63) })
	case isa.OpMul:
		exact2(func(x, y uint64) uint64 { return x * y })
	case isa.OpDiv:
		exact2(func(x, y uint64) uint64 {
			if y == 0 {
				return 0
			}
			return x / y
		})
	case isa.OpFAdd, isa.OpFMul, isa.OpFDiv:
		// Float bit patterns are not tracked; taint still flows.
		t = ta || tb
	case isa.OpLoad, isa.OpLoad32, isa.OpLoadF:
		t = ta // secret-indexed loads yield secret-derived values
		if a.kind != vUnknown && sec.memTainted(a.v+uint64(in.Imm)) {
			t = true // load reads declared secret memory
		}
	case isa.OpRdtsc:
		// Nondeterministic but public.
	case isa.OpRdrand:
		t = cfg.TaintRdrand
	}
	if ctrlDep {
		t = true // implicit flow: written under a secret-dependent branch
	}
	if sec.regSecret(d) {
		t = true // declared secret-home register: writes stay secret
	}
	st.set(d, v, t)
}

// taintInfo is the result of pass 2, consumed by the classifier.
type taintInfo struct {
	// in[i] is the dataflow fact immediately before instruction i.
	// Unreachable instructions keep the zero state.
	in []regState
	// ctrl[i] marks instructions control-dependent on a tainted branch.
	ctrl []bool
	// reached[i] marks instructions reachable from the entry.
	reached []bool
	sec     Secrets
	cfg     Config
}

// dataflow runs the register fixpoint for a fixed control-dependence set
// and returns the per-instruction in-states plus the reachability set.
func dataflow(g *CFG, sec Secrets, cfg Config, ctrl []bool) ([]regState, []bool) {
	entry := regState{}
	for _, r := range sec.Regs {
		if r.Valid() {
			entry.taint |= regBit(r)
		}
	}
	blockIn := make([]regState, len(g.Blocks))
	seen := make([]bool, len(g.Blocks))
	blockIn[0], seen[0] = entry, true
	work := []int{0}
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		st := blockIn[bi]
		blk := g.Blocks[bi]
		for i := blk.Start; i < blk.End; i++ {
			step(&st, g.Prog.Instrs[i], ctrl[i], sec, cfg)
		}
		for _, sb := range blk.Succs {
			if !seen[sb] {
				seen[sb], blockIn[sb] = true, st
				work = append(work, sb)
			} else if mergeInto(&blockIn[sb], &st) {
				work = append(work, sb)
			}
		}
	}
	in := make([]regState, g.Prog.Len())
	reached := make([]bool, g.Prog.Len())
	for bi := range g.Blocks {
		if !seen[bi] {
			continue
		}
		st := blockIn[bi]
		blk := g.Blocks[bi]
		for i := blk.Start; i < blk.End; i++ {
			in[i], reached[i] = st, true
			step(&st, g.Prog.Instrs[i], ctrl[i], sec, cfg)
		}
	}
	return in, reached
}

// taint iterates the register fixpoint and the control-dependence
// computation to a joint fixpoint: branches found tainted widen the
// control-dependent region, which (through implicit flow) can taint
// further branches. Both sets only grow, so this terminates.
func taint(g *CFG, sec Secrets, cfg Config) *taintInfo {
	n := g.Prog.Len()
	ctrl := make([]bool, n)
	var in []regState
	var reached []bool
	for iter := 0; iter <= n; iter++ {
		in, reached = dataflow(g, sec, cfg, ctrl)
		changed := false
		for i, instr := range g.Prog.Instrs {
			if !reached[i] || !instr.Op.IsCondBranch() {
				continue
			}
			if !in[i].tainted(instr.Rs1) && !in[i].tainted(instr.Rs2) {
				continue
			}
			succs := g.InstrSuccs(i)
			if len(succs) < 2 {
				continue
			}
			// Control-dependent region: instructions reachable from one
			// successor but not the other (symmetric difference; the
			// post-dominated join is reachable from both and excluded).
			r1, r2 := g.reachableFrom(succs[0]), g.reachableFrom(succs[1])
			for j := 0; j < n; j++ {
				if r1[j] != r2[j] && !ctrl[j] {
					ctrl[j] = true
					changed = true
				}
			}
		}
		if !changed {
			break
		}
	}
	return &taintInfo{in: in, ctrl: ctrl, reached: reached, sec: sec, cfg: cfg}
}
