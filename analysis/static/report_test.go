package static

import (
	"testing"

	"microscope/analysis/sidechan"
)

// Sort must impose the documented canonical order on a shuffled slice.
func TestReportSortCanonicalOrder(t *testing.T) {
	r := &Report{Findings: []Finding{
		{Index: 7, Channel: sidechan.ChanPort, Severity: SevMedium, Handle: 2},
		{Index: 3, Channel: sidechan.ChanLatency, Severity: SevHigh, Handle: 1},
		{Index: 7, Channel: sidechan.ChanCacheSet, Severity: SevHigh, Handle: 2},
		{Index: 3, Channel: sidechan.ChanLatency, Severity: SevMedium, Handle: 1},
		{Index: 7, Channel: sidechan.ChanCacheSet, Severity: SevHigh, Handle: 0},
	}}
	r.Sort()
	want := []Finding{
		{Index: 3, Channel: sidechan.ChanLatency, Severity: SevHigh, Handle: 1},
		{Index: 3, Channel: sidechan.ChanLatency, Severity: SevMedium, Handle: 1},
		{Index: 7, Channel: sidechan.ChanCacheSet, Severity: SevHigh, Handle: 0},
		{Index: 7, Channel: sidechan.ChanCacheSet, Severity: SevHigh, Handle: 2},
		{Index: 7, Channel: sidechan.ChanPort, Severity: SevMedium, Handle: 2},
	}
	for i := range want {
		if r.Findings[i] != want[i] {
			t.Fatalf("position %d: got %+v, want %+v", i, r.Findings[i], want[i])
		}
	}
}
