package verify

import (
	"testing"

	"microscope/attack/victim"
	"microscope/sim/mem"
)

// Cross-validation: every builtin victim through the full verifier.
// The paper's attackable victims must come out LEAKY with a
// simulator-checked witness on the claimed channel; the constant-time
// control must come out PROVEN-SAFE with a full differential
// certificate; and fence repair must turn the Fig. 5 and Fig. 6 victims
// PROVEN-SAFE.

type crossCase struct {
	name    string
	layout  func(t *testing.T) *victim.Layout
	handle  string // symbol of the replay-handle page
	verdict Verdict
}

func crossCases() []crossCase {
	return []crossCase{
		{
			name:    "controlflow",
			layout:  func(*testing.T) *victim.Layout { return victim.ControlFlowSecret(true) },
			handle:  "handle",
			verdict: Leaky,
		},
		{
			name:    "singlesecret",
			layout:  func(*testing.T) *victim.Layout { return victim.SingleSecret(3, true) },
			handle:  "count",
			verdict: Leaky,
		},
		{
			name:    "loopsecret",
			layout:  func(*testing.T) *victim.Layout { return victim.LoopSecret([]byte{3, 1, 4, 1, 5}) },
			handle:  "handle",
			verdict: Leaky,
		},
		{
			name: "aes",
			layout: func(t *testing.T) *victim.Layout {
				v, err := victim.NewAESVictim([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			// The pre-loop stack access (§4.4): arming rk itself would
			// starve the Td index chain, since every Td address
			// data-depends on the faulting rk loads.
			handle:  "stack",
			verdict: Leaky,
		},
		{
			name: "modexp",
			layout: func(t *testing.T) *victim.Layout {
				v, err := victim.NewModExpVictim(5, 0xb, 97, 4)
				if err != nil {
					t.Fatal(err)
				}
				return v.Layout
			},
			handle:  "handle",
			verdict: Leaky,
		},
		{
			name:    "rdrand",
			layout:  func(*testing.T) *victim.Layout { return victim.RdrandBias() },
			handle:  "handle",
			verdict: Leaky,
		},
		{
			name:    "ctcontrol",
			layout:  func(*testing.T) *victim.Layout { return victim.ConstantTime() },
			handle:  "handle",
			verdict: ProvenSafe,
		},
	}
}

func subjectFor(t *testing.T, c crossCase) *Subject {
	lay := c.layout(t)
	sub := NewSubject(lay)
	sub.Handle = lay.Sym(c.handle)
	return sub
}

func TestCrossValidateBuiltinVictims(t *testing.T) {
	for _, c := range crossCases() {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			res, err := Verify(subjectFor(t, c), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if res.Verdict != c.verdict {
				t.Fatalf("verdict = %s (%s), want %s", res.Verdict, res.Reason, c.verdict)
			}
			switch c.verdict {
			case Leaky:
				w := res.Witness
				if w == nil {
					t.Fatal("LEAKY verdict without witness")
				}
				if channelDigest(w.ProjA, w.Channel) == channelDigest(w.ProjB, w.Channel) {
					t.Fatalf("witness does not diverge on its claimed channel %s:\nA: %+v\nB: %+v",
						w.Channel, w.ProjA, w.ProjB)
				}
				if len(res.Sites) == 0 {
					t.Fatal("LEAKY verdict without abstract sites")
				}
			case ProvenSafe:
				cert := res.Certificate
				if cert == nil {
					t.Fatal("PROVEN-SAFE verdict without certificate")
				}
				if cert.Trials < 32 {
					t.Fatalf("certificate has %d trials, want >= 32", cert.Trials)
				}
			}
		})
	}
}

// Fence repair must turn the Fig. 5 (subnormal latency) and Fig. 6
// (port/latency branch) victims into PROVEN-SAFE programs.
func TestRepairBuiltinVictims(t *testing.T) {
	for _, name := range []string{"controlflow", "singlesecret"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			var c crossCase
			for _, cc := range crossCases() {
				if cc.name == name {
					c = cc
				}
			}
			rr, err := Repair(subjectFor(t, c), DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			if rr.Inserted == 0 {
				t.Fatal("repair inserted no fences")
			}
			if rr.Result.Verdict != ProvenSafe {
				t.Fatalf("repaired %s = %s (%s), want PROVEN-SAFE",
					name, rr.Result.Verdict, rr.Result.Reason)
			}
			if rr.Result.Certificate == nil || rr.Result.Certificate.Trials < 32 {
				t.Fatalf("repaired %s lacks a full certificate: %+v", name, rr.Result.Certificate)
			}
		})
	}
}

// The verifier's handle auto-derivation must fall back to the layout's
// conventional symbol and stay consistent with an explicit address.
func TestSubjectHandleDefaults(t *testing.T) {
	lay := victim.ControlFlowSecret(true)
	sub := NewSubject(lay)
	if sub.Handle != lay.Sym("handle") {
		t.Fatalf("NewSubject handle = %#x, want %#x", sub.Handle, lay.Sym("handle"))
	}
	if got := sub.Handle; got == mem.Addr(0) {
		t.Fatal("handle not derived")
	}
}
