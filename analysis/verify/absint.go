package verify

import (
	"fmt"
	"math"
	"sort"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// The path-sensitive abstract interpretation.
//
// The domain is relational in the simplest useful sense: every register
// and memory word carries BOTH its concrete value (the layout's initial
// image interpreted exactly, mirroring sim/cpu's reference semantics)
// and a taint mask over secret atoms. Concrete values make addresses
// and branch outcomes decidable — no widening, no alias blowup — while
// the masks record which secret inputs each value is a function of.
// Path sensitivity enters at secret-dependent conditional branches:
// both successors are explored (up to Config.MaxPaths), and inside the
// branch's control-dependence region every write additionally absorbs
// the branch condition's atoms (implicit flow). The control-dependence
// region of a branch is the symmetric difference of the instruction
// sets reachable from its two successors — the same construction
// analysis/static's taint pass uses, here evaluated per path.
//
// Squash shadows are tracked dynamically: executing a replay handle (a
// memory access with an attacker-predictable, untainted address, or a
// txbegin) opens a shadow covering the next ROB-window dynamic
// instructions; a fence closes every open shadow, because a fence in a
// faulting handle's shadow never retires and therefore blocks all
// younger dispatch. A "site" is a channel-bearing instruction (memory
// access, divide, rdrand) executed inside an open shadow with tainted
// operands or a tainted path condition.

// Atom is one independently assignable secret input: a declared secret
// register, an 8-byte-aligned word of declared secret memory, or the
// RDRAND stream.
type Atom struct {
	// Kind is "reg", "mem" or "rand".
	Kind string `json:"kind"`
	// Reg is set for kind "reg".
	Reg isa.Reg `json:"reg,omitempty"`
	// Addr is the word-aligned virtual address for kind "mem".
	Addr mem.Addr `json:"addr,omitempty"`
}

// String renders the atom for text reports.
func (a Atom) String() string {
	switch a.Kind {
	case "reg":
		return fmt.Sprintf("reg:%s", a.Reg)
	case "mem":
		return fmt.Sprintf("mem:%#x", a.Addr)
	}
	return a.Kind
}

// overflowBit collapses atoms past the 64-bit mask capacity; a site
// carrying it depends on "some further secret" without saying which.
const overflowBit = 63

// atomTable interns atoms into mask bit positions.
type atomTable struct {
	atoms []Atom
	index map[Atom]int
}

func newAtomTable() *atomTable {
	return &atomTable{index: make(map[Atom]int)}
}

// mask returns the taint bit for a, interning it if new.
func (t *atomTable) mask(a Atom) uint64 {
	i, ok := t.index[a]
	if !ok {
		i = len(t.atoms)
		if i >= overflowBit {
			i = overflowBit
		} else {
			t.atoms = append(t.atoms, a)
		}
		t.index[a] = i
	}
	return 1 << uint(i)
}

// resolve expands a mask back into its atoms.
func (t *atomTable) resolve(mask uint64) []Atom {
	var out []Atom
	for i, a := range t.atoms {
		if mask&(1<<uint(i)) != 0 {
			out = append(out, a)
		}
	}
	if mask&(1<<overflowBit) != 0 {
		out = append(out, Atom{Kind: "overflow"})
	}
	return out
}

// openShadow is one armed replay handle's remaining squash window.
type openShadow struct {
	handlePC int
	left     int
}

// pathState is the abstract machine state of one explored path.
type pathState struct {
	pc    int
	steps int
	regs  [isa.NumRegs]uint64
	regT  [isa.NumRegs]uint64
	memV  map[mem.Addr]byte   // overlay over the layout image
	memT  map[mem.Addr]uint64 // word-aligned taint overlay
	// decisions maps cond-branch pc -> accumulated condition taint of
	// forks taken there; pathTaint(pc) ORs the entries whose
	// control-dependence region contains pc.
	decisions map[int]uint64
	shadows   []openShadow
	rng       uint64
	inTx      bool
	ckptV     [isa.NumRegs]uint64
	ckptT     [isa.NumRegs]uint64
	abortPC   int
	txAborts  uint64
}

func (st *pathState) clone() *pathState {
	c := *st
	c.memV = make(map[mem.Addr]byte, len(st.memV))
	for k, v := range st.memV {
		c.memV[k] = v
	}
	c.memT = make(map[mem.Addr]uint64, len(st.memT))
	for k, v := range st.memT {
		c.memT[k] = v
	}
	c.decisions = make(map[int]uint64, len(st.decisions))
	for k, v := range st.decisions {
		c.decisions[k] = v
	}
	c.shadows = append([]openShadow(nil), st.shadows...)
	return &c
}

// siteKey dedups site observations across paths.
type siteKey struct {
	pc int
	ch sidechan.Channel
}

type siteAcc struct {
	atoms    uint64
	implicit bool // false once any explicit (data-taint) observation lands
	handle   int
	distance int
}

// explorer runs the exploration and accumulates sites.
type explorer struct {
	sub    *Subject
	cfg    Config
	prog   *isa.Program
	atoms  *atomTable
	region map[int][]bool

	base     map[mem.Addr]byte // the layout's initial memory image
	regAtoms map[isa.Reg]uint64
	randMask uint64

	sites map[siteKey]*siteAcc
	// hotOps maps channel-bearing pcs executed with tainted operands
	// (shadowed or not — normal mispredict shadows transiently expose
	// them too), and taintedBranches the cond branches whose condition
	// ever carried taint. Both feed the repair planner.
	taintedBranches map[int]bool
	hotOps          map[int]uint64

	paths    int
	steps    int
	complete bool
	bailout  string

	// handleVA is the auto-derived replay-handle address: the first
	// untainted load the baseline path executes.
	handleVA mem.Addr
}

// explore runs the abstract interpretation over the subject.
func explore(sub *Subject, cfg Config) (*explorer, error) {
	prog := sub.Layout.Prog
	if prog == nil || prog.Len() == 0 {
		return nil, fmt.Errorf("verify: subject %q has no program", sub.Layout.Name)
	}
	if err := prog.Validate(); err != nil {
		return nil, fmt.Errorf("verify: %v", err)
	}
	ex := &explorer{
		sub:             sub,
		cfg:             cfg,
		prog:            prog,
		atoms:           newAtomTable(),
		region:          branchRegions(prog),
		base:            make(map[mem.Addr]byte),
		regAtoms:        make(map[isa.Reg]uint64),
		sites:           make(map[siteKey]*siteAcc),
		taintedBranches: make(map[int]bool),
		hotOps:          make(map[int]uint64),
		complete:        true,
		handleVA:        sub.Handle,
	}
	for _, r := range sub.Layout.Regions {
		for i, b := range r.Init {
			if b != 0 {
				ex.base[r.VA+mem.Addr(i)] = b
			}
		}
	}
	// Eager atoms for the declared secret-home registers, in declaration
	// order so bit positions are stable.
	for _, r := range sub.Secrets.Regs {
		ex.regAtoms[r] = ex.atoms.mask(Atom{Kind: "reg", Reg: r})
	}

	init := &pathState{
		pc:        sub.Layout.Entry,
		memV:      make(map[mem.Addr]byte),
		memT:      make(map[mem.Addr]uint64),
		decisions: make(map[int]uint64),
		rng:       cpu.DefaultConfig().RandSeed | 1,
		abortPC:   -1,
	}
	for r, m := range ex.regAtoms {
		init.regT[r] = m
	}

	stack := []*pathState{init}
	for len(stack) > 0 {
		st := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		ex.paths++
		if ex.paths > cfg.MaxPaths {
			ex.incomplete("path budget exhausted")
			break
		}
		ex.runPath(st, &stack)
		if ex.steps > cfg.MaxTotalSteps {
			ex.incomplete("total step budget exhausted")
			break
		}
	}
	return ex, nil
}

func (ex *explorer) incomplete(why string) {
	ex.complete = false
	if ex.bailout == "" {
		ex.bailout = why
	}
}

// runPath interprets st until it halts or exhausts its budget, pushing
// forked states onto the stack.
func (ex *explorer) runPath(st *pathState, stack *[]*pathState) {
	for {
		if st.pc < 0 || st.pc >= ex.prog.Len() {
			return
		}
		if st.steps >= ex.cfg.MaxStepsPerPath {
			ex.incomplete("per-path step budget exhausted")
			return
		}
		if ex.steps >= ex.cfg.MaxTotalSteps {
			ex.incomplete("total step budget exhausted")
			return
		}
		st.steps++
		ex.steps++
		if halt := ex.step(st, stack); halt {
			return
		}
	}
}

// pathTaint ORs the decision taints whose control-dependence region
// contains pc.
func (ex *explorer) pathTaint(st *pathState, pc int) uint64 {
	var t uint64
	for bpc, bt := range st.decisions {
		if r := ex.region[bpc]; r != nil && r[pc] {
			t |= bt
		}
	}
	return t
}

// step executes one instruction; it returns true when the path ends.
func (ex *explorer) step(st *pathState, stack *[]*pathState) bool {
	in := ex.prog.Instrs[st.pc]
	pathT := ex.pathTaint(st, st.pc)
	a, b := st.regs[in.Rs1], st.regs[in.Rs2]
	aT, bT := st.regT[in.Rs1], st.regT[in.Rs2]

	ex.observe(st, in, pathT)

	// Shadow bookkeeping: age the open shadows, then open a new one for
	// a handle so it covers the NEXT window instructions, and let a
	// fence close everything (a shadowed fence never retires, so nothing
	// younger ever issues).
	advanceShadows := func(opened bool) {
		live := st.shadows[:0]
		for _, s := range st.shadows {
			if s.left--; s.left > 0 {
				live = append(live, s)
			}
		}
		st.shadows = live
		if opened {
			st.shadows = append(st.shadows, openShadow{handlePC: st.pc, left: shadowWindow(ex.cfg.Static)})
		}
	}
	if in.Op == isa.OpFence {
		st.shadows = st.shadows[:0]
	} else {
		advanceShadows(ex.isHandle(in, aT))
	}

	next := st.pc + 1
	set := func(d isa.Reg, v, t uint64) {
		t |= pathT
		if m, ok := ex.regAtoms[d]; ok {
			// Declared secret-home register: writes stay secret (the
			// materialized immediate IS the secret constant) — mirrors
			// analysis/static's regSecret rule.
			t |= m
		}
		st.regs[d] = v
		st.regT[d] = t
	}

	switch in.Op {
	case isa.OpNop, isa.OpFence:
	case isa.OpHalt:
		return true
	case isa.OpMovImm, isa.OpFLoadImm:
		set(in.Rd, uint64(in.Imm), 0)
	case isa.OpMov, isa.OpFMov:
		set(in.Rd, a, aT)
	case isa.OpAdd:
		set(in.Rd, a+b, aT|bT)
	case isa.OpAddImm:
		set(in.Rd, a+uint64(in.Imm), aT)
	case isa.OpSub:
		set(in.Rd, a-b, aT|bT)
	case isa.OpAnd:
		set(in.Rd, a&b, aT|bT)
	case isa.OpAndImm:
		set(in.Rd, a&uint64(in.Imm), aT)
	case isa.OpOr:
		set(in.Rd, a|b, aT|bT)
	case isa.OpXor:
		set(in.Rd, a^b, aT|bT)
	case isa.OpShl:
		set(in.Rd, a<<(b&63), aT|bT)
	case isa.OpShlImm:
		set(in.Rd, a<<(uint64(in.Imm)&63), aT)
	case isa.OpShr:
		set(in.Rd, a>>(b&63), aT|bT)
	case isa.OpShrImm:
		set(in.Rd, a>>(uint64(in.Imm)&63), aT)
	case isa.OpMul:
		set(in.Rd, a*b, aT|bT)
	case isa.OpDiv:
		q := uint64(0)
		if b != 0 {
			q = a / b
		}
		set(in.Rd, q, aT|bT)
	case isa.OpFAdd:
		set(in.Rd, math.Float64bits(math.Float64frombits(a)+math.Float64frombits(b)), aT|bT)
	case isa.OpFMul:
		set(in.Rd, math.Float64bits(math.Float64frombits(a)*math.Float64frombits(b)), aT|bT)
	case isa.OpFDiv:
		set(in.Rd, math.Float64bits(math.Float64frombits(a)/math.Float64frombits(b)), aT|bT)
	case isa.OpLoad, isa.OpLoadF:
		v, t := ex.loadMem(st, a+uint64(in.Imm), 8)
		set(in.Rd, v, t|aT)
	case isa.OpLoad32:
		v, t := ex.loadMem(st, a+uint64(in.Imm), 4)
		set(in.Rd, v, t|aT)
	case isa.OpStore, isa.OpStoreF:
		ex.storeMem(st, a+uint64(in.Imm), b, 8, bT|aT|pathT)
	case isa.OpStore32:
		ex.storeMem(st, a+uint64(in.Imm), b, 4, bT|aT|pathT)
	case isa.OpBeq:
		next = ex.branch(st, stack, a == b, aT|bT, in.Target)
	case isa.OpBne:
		next = ex.branch(st, stack, a != b, aT|bT, in.Target)
	case isa.OpBlt:
		next = ex.branch(st, stack, int64(a) < int64(b), aT|bT, in.Target)
	case isa.OpBge:
		next = ex.branch(st, stack, int64(a) >= int64(b), aT|bT, in.Target)
	case isa.OpJmp:
		next = in.Target
	case isa.OpRdtsc:
		set(in.Rd, uint64(st.steps), 0)
	case isa.OpRdrand:
		x := st.rng
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		st.rng = x
		var t uint64
		if ex.cfg.Static.TaintRdrand {
			if ex.randMask == 0 {
				ex.randMask = ex.atoms.mask(Atom{Kind: "rand"})
			}
			t = ex.randMask
		}
		set(in.Rd, x*0x2545F4914F6CDD1D, t)
	case isa.OpTxBegin:
		st.inTx = true
		st.ckptV = st.regs
		st.ckptT = st.regT
		st.abortPC = in.Target
	case isa.OpTxEnd:
		st.inTx = false
	case isa.OpTxAbort:
		if st.inTx {
			st.txAborts++
			st.regs = st.ckptV
			st.regT = st.ckptT
			st.regs[cpu.AbortReg] = st.txAborts
			st.regT[cpu.AbortReg] = 0
			st.inTx = false
			next = st.abortPC
		}
	default:
		// Validate() guarantees defined opcodes; anything else is a new
		// op the verifier does not model yet.
		ex.incomplete(fmt.Sprintf("unmodeled op %s at pc %d", in.Op, st.pc))
		return true
	}
	st.pc = next
	return false
}

// branch resolves a conditional: untainted conditions follow the
// concrete outcome; tainted ones record the decision and fork the other
// successor.
func (ex *explorer) branch(st *pathState, stack *[]*pathState, taken bool, condT uint64, target int) int {
	concrete, other := st.pc+1, target
	if taken {
		concrete, other = target, st.pc+1
	}
	if condT == 0 || concrete == other {
		return concrete
	}
	ex.taintedBranches[st.pc] = true
	st.decisions[st.pc] |= condT
	if ex.paths+len(*stack) < ex.cfg.MaxPaths {
		fork := st.clone()
		fork.pc = other
		*stack = append(*stack, fork)
	} else {
		ex.incomplete("path budget exhausted")
	}
	return concrete
}

// isHandle reports whether in is a replay handle: an attacker-
// predictable (untainted-address) memory access, or a txbegin.
func (ex *explorer) isHandle(in isa.Instr, addrT uint64) bool {
	if in.Op == isa.OpTxBegin {
		return true
	}
	return in.Op.IsMem() && addrT == 0
}

// observe records a site if in executes inside an open shadow with a
// secret-dependent effect on its channel.
func (ex *explorer) observe(st *pathState, in isa.Instr, pathT uint64) {
	// Auto-derive the replay handle from the first untainted load.
	if ex.handleVA == 0 && in.Op.IsLoad() && st.regT[in.Rs1] == 0 {
		ex.handleVA = st.regs[in.Rs1] + uint64(in.Imm)
	}
	ch := sidechan.OpChannel(in.Op)
	if ch == sidechan.ChanNone {
		return
	}
	var dataT uint64
	switch {
	case in.Op.IsMem():
		dataT = st.regT[in.Rs1] // the address selects the cache set
	case in.Op == isa.OpDiv || in.Op == isa.OpFDiv:
		dataT = st.regT[in.Rs1] | st.regT[in.Rs2]
	case in.Op == isa.OpRdrand:
		if ex.cfg.Static.TaintRdrand {
			if ex.randMask == 0 {
				ex.randMask = ex.atoms.mask(Atom{Kind: "rand"})
			}
			dataT = ex.randMask
		}
	}
	if dataT != 0 {
		// Hot regardless of replay shadows: an ordinary mispredict
		// shadow can expose the op transiently too, so the repair
		// planner fences it either way.
		ex.hotOps[st.pc] |= dataT
	}
	if len(st.shadows) == 0 || (dataT == 0 && pathT == 0) {
		return
	}
	sh := st.shadows[0]
	k := siteKey{pc: st.pc, ch: ch}
	acc, ok := ex.sites[k]
	if !ok {
		acc = &siteAcc{
			implicit: dataT == 0,
			handle:   sh.handlePC,
			distance: shadowWindow(ex.cfg.Static) - sh.left + 1,
		}
		ex.sites[k] = acc
	}
	acc.atoms |= dataT | pathT
	if dataT != 0 {
		acc.implicit = false
	}
}

// loadMem reads size bytes little-endian, returning value and taint.
func (ex *explorer) loadMem(st *pathState, addr mem.Addr, size int) (uint64, uint64) {
	var v uint64
	for i := 0; i < size; i++ {
		var byteV byte
		if ov, ok := st.memV[addr+mem.Addr(i)]; ok {
			byteV = ov
		} else {
			byteV = ex.base[addr+mem.Addr(i)]
		}
		v |= uint64(byteV) << (8 * uint(i))
	}
	return v, ex.memTaint(st, addr, size)
}

// memTaint unions the taint of the words overlapping [addr, addr+size).
func (ex *explorer) memTaint(st *pathState, addr mem.Addr, size int) uint64 {
	var t uint64
	for w := addr &^ 7; w < addr+mem.Addr(size); w += 8 {
		if ov, ok := st.memT[w]; ok {
			t |= ov
		} else {
			t |= ex.secretWordMask(w)
		}
	}
	return t
}

// secretWordMask interns (lazily) an atom for a declared-secret word.
func (ex *explorer) secretWordMask(w mem.Addr) uint64 {
	for _, m := range ex.sub.Secrets.Mems {
		if m.Contains(w) {
			return ex.atoms.mask(Atom{Kind: "mem", Addr: w})
		}
	}
	return 0
}

// shadowWindow resolves the configured ROB window.
func shadowWindow(c static.Config) int {
	if c.ROBWindow > 0 {
		return c.ROBWindow
	}
	return static.DefaultROBWindow
}

// storeMem writes size bytes little-endian with the given taint.
func (ex *explorer) storeMem(st *pathState, addr mem.Addr, v uint64, size int, t uint64) {
	for i := 0; i < size; i++ {
		st.memV[addr+mem.Addr(i)] = byte(v >> (8 * uint(i)))
	}
	for w := addr &^ 7; w < addr+mem.Addr(size); w += 8 {
		if size == 8 && addr == w {
			// Full aligned overwrite: the old taint (including a secret
			// atom) is gone.
			st.memT[w] = t
		} else {
			st.memT[w] = t | ex.memTaintWord(st, w)
		}
	}
}

func (ex *explorer) memTaintWord(st *pathState, w mem.Addr) uint64 {
	if ov, ok := st.memT[w]; ok {
		return ov
	}
	return ex.secretWordMask(w)
}

// siteList renders the accumulated sites deterministically, iterating
// the site keys in sorted (pc, channel) order.
func (ex *explorer) siteList() []Site {
	keys := make([]siteKey, 0, len(ex.sites))
	for k := range ex.sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].pc != keys[j].pc {
			return keys[i].pc < keys[j].pc
		}
		return keys[i].ch < keys[j].ch
	})
	out := make([]Site, 0, len(keys))
	for _, k := range keys {
		acc := ex.sites[k]
		out = append(out, Site{
			PC:       k.pc,
			Instr:    fmt.Sprintf("%v", ex.prog.Instrs[k.pc]),
			Channel:  k.ch,
			Handle:   acc.handle,
			Distance: acc.distance,
			Implicit: acc.implicit,
			Atoms:    ex.atoms.resolve(acc.atoms),
		})
	}
	return out
}

// atomsOf returns the mask accumulated for the site at (pc, ch).
func (ex *explorer) atomsOf(s Site) uint64 {
	if acc, ok := ex.sites[siteKey{pc: s.PC, ch: s.Channel}]; ok {
		return acc.atoms
	}
	return 0
}

// branchRegions precomputes, for each conditional branch, the set of
// instructions control-dependent on it: those reachable from exactly
// one of its two successors.
func branchRegions(p *isa.Program) map[int][]bool {
	var txTargets []int
	for _, in := range p.Instrs {
		if in.Op == isa.OpTxBegin {
			txTargets = append(txTargets, in.Target)
		}
	}
	sort.Ints(txTargets)
	succs := func(i int) []int {
		in := p.Instrs[i]
		switch {
		case in.Op == isa.OpHalt:
			return nil
		case in.Op == isa.OpJmp:
			return []int{in.Target}
		case in.Op.IsCondBranch(), in.Op == isa.OpTxBegin:
			if in.Target == i+1 {
				return []int{i + 1}
			}
			return []int{i + 1, in.Target}
		case in.Op == isa.OpTxAbort:
			next := []int{}
			if i+1 < p.Len() {
				next = append(next, i+1)
			}
			return append(next, txTargets...)
		default:
			if i+1 < p.Len() {
				return []int{i + 1}
			}
			return nil
		}
	}
	reach := func(from int) []bool {
		seen := make([]bool, p.Len())
		work := []int{from}
		for len(work) > 0 {
			i := work[len(work)-1]
			work = work[:len(work)-1]
			if i < 0 || i >= p.Len() || seen[i] {
				continue
			}
			seen[i] = true
			work = append(work, succs(i)...)
		}
		return seen
	}
	regions := make(map[int][]bool)
	for i, in := range p.Instrs {
		if !in.Op.IsCondBranch() || in.Target == i+1 {
			continue
		}
		r1 := reach(i + 1)
		r2 := reach(in.Target)
		region := make([]bool, p.Len())
		for j := range region {
			region[j] = r1[j] != r2[j]
		}
		regions[i] = region
	}
	return regions
}
