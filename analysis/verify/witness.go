package verify

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Counterexample-guided witness search and the randomized differential.
//
// A site names the secret atoms it depends on; the search instantiates
// those atoms with a short list of contrasting value pairs (chosen to
// hit every channel family: distinct cache lines, subnormal vs normal
// floats, all-ones vs zero bit patterns, distinct RDRAND seeds), runs
// both assignments through the full replay attack, and accepts the
// first pair whose projections diverge on the site's claimed channel.
// The differential, conversely, draws Config.Trials whole-domain random
// valuations of ALL atoms and demands every projection equal the
// baseline's — the dynamic half of a PROVEN-SAFE certificate.

// valuePair is one contrasting valuation applied to a site's atoms.
type valuePair struct {
	a, b         uint64 // reg/mem atom values
	seedA, seedB uint64 // rand atom seeds
	hasSeed      bool
}

func witnessPairs() []valuePair {
	return []valuePair{
		// Distinct small values: adjacent cache lines for shifted
		// indices, subnormal (1) vs zero for FP bit patterns.
		{a: 0, b: 1, seedA: 1, seedB: 2, hasSeed: true},
		// Normal float vs smallest subnormal: the Fig. 5 latency split.
		{a: math.Float64bits(2.0), b: 1, seedA: 0x5ca1ab1e, seedB: 0xfeedface, hasSeed: true},
		// Extremal bit patterns: flips every secret bit, including the
		// high bits MSB-first loops (modexp) consume in their first —
		// and only replayed — iterations.
		{a: 0, b: ^uint64(0), seedA: 3, seedB: 0x9e3779b97f4a7c15, hasSeed: true},
	}
}

// assignmentsFor turns a site's atom set and one value pair into the
// two assignments to contrast. ok is false when the site has no
// targetable atoms (only the overflow pseudo-atom).
func assignmentsFor(atoms []Atom, p valuePair) (a, b Assignment, ok bool) {
	for _, at := range atoms {
		switch at.Kind {
		case "reg":
			a.Regs = append(a.Regs, RegVal{Reg: at.Reg, Val: p.a})
			b.Regs = append(b.Regs, RegVal{Reg: at.Reg, Val: p.b})
		case "mem":
			a.Mems = append(a.Mems, MemVal{Addr: at.Addr, Val: p.a})
			b.Mems = append(b.Mems, MemVal{Addr: at.Addr, Val: p.b})
		case "rand":
			if p.hasSeed {
				a.Seed, a.SeedSet = p.seedA, true
				b.Seed, b.SeedSet = p.seedB, true
			}
		}
	}
	canonicalize(&a)
	canonicalize(&b)
	ok = len(a.Regs) > 0 || len(a.Mems) > 0 || a.SeedSet
	return a, b, ok
}

func canonicalize(a *Assignment) {
	sort.Slice(a.Regs, func(i, j int) bool { return a.Regs[i].Reg < a.Regs[j].Reg })
	sort.Slice(a.Mems, func(i, j int) bool { return a.Mems[i].Addr < a.Mems[j].Addr })
}

// searchWitness tries to dynamically confirm one of the abstract sites.
// It returns the first witness whose two runs diverge on the site's
// claimed channel, or nil with the last run error (if any) when the
// pair budget is exhausted.
func (r *runner) searchWitness(sites []Site) (*Witness, error) {
	var lastErr error
	budget := r.cfg.MaxWitnessPairs
	for _, site := range sites {
		for _, p := range witnessPairs() {
			if budget <= 0 {
				return nil, lastErr
			}
			asgA, asgB, ok := assignmentsFor(site.Atoms, p)
			if !ok {
				break // no targetable atoms; further pairs won't help
			}
			budget--
			projA, errA := r.run(asgA)
			if errA != nil {
				lastErr = errA
				continue
			}
			projB, errB := r.run(asgB)
			if errB != nil {
				lastErr = errB
				continue
			}
			if channelDigest(projA, site.Channel) != channelDigest(projB, site.Channel) {
				return &Witness{
					SitePC:  site.PC,
					Channel: site.Channel,
					A:       asgA,
					B:       asgB,
					ProjA:   projA,
					ProjB:   projB,
				}, nil
			}
		}
	}
	return nil, lastErr
}

// differential runs the baseline plus Config.Trials randomized secret
// valuations. Equal projections everywhere yield a Certificate; any
// divergence yields a Witness (SitePC -1: found by the differential,
// not site-guided search).
func (r *runner) differential(trials int) (*Certificate, *Witness, error) {
	base, err := r.run(Assignment{})
	if err != nil {
		return nil, nil, err
	}
	rng := rand.New(rand.NewSource(r.cfg.Seed))
	for i := 0; i < trials; i++ {
		asg := r.randomAssignment(rng)
		proj, err := r.run(asg)
		if err != nil {
			return nil, nil, fmt.Errorf("trial %d: %w", i, err)
		}
		if !proj.Equal(base) {
			ch, _ := divergingChannel(base, proj)
			return nil, &Witness{
				SitePC:  -1,
				Channel: ch,
				A:       Assignment{},
				B:       asg,
				ProjA:   base,
				ProjB:   proj,
			}, nil
		}
	}
	return &Certificate{Trials: trials, Baseline: base}, nil, nil
}

// randomAssignment draws whole-domain random values for every secret
// atom the exploration touched, plus every declared secret input the
// exploration may not have reached (secret-home registers always get a
// value so the differential never silently under-constrains).
func (r *runner) randomAssignment(rng *rand.Rand) Assignment {
	var asg Assignment
	seen := make(map[isa.Reg]bool)
	seenMem := make(map[mem.Addr]bool)
	if r.ex != nil {
		for _, at := range r.ex.atoms.atoms {
			switch at.Kind {
			case "reg":
				if !seen[at.Reg] {
					seen[at.Reg] = true
					asg.Regs = append(asg.Regs, RegVal{Reg: at.Reg, Val: rng.Uint64()})
				}
			case "mem":
				if !seenMem[at.Addr] {
					seenMem[at.Addr] = true
					asg.Mems = append(asg.Mems, MemVal{Addr: at.Addr, Val: rng.Uint64()})
				}
			case "rand":
				asg.Seed, asg.SeedSet = rng.Uint64(), true
			}
		}
	}
	for _, reg := range r.sub.Secrets.Regs {
		if !seen[reg] {
			seen[reg] = true
			asg.Regs = append(asg.Regs, RegVal{Reg: reg, Val: rng.Uint64()})
		}
	}
	canonicalize(&asg)
	return asg
}
