// Package verify is the constant-time verifier: it classifies a victim
// program as PROVEN-SAFE, LEAKY (with a simulator-checked witness), or
// UNKNOWN with respect to MicroScope replay attacks.
//
// Where analysis/static is a may-leak scanner (sound but
// over-approximate: a finding means "possibly leaks"), this package
// decides. It runs a path-sensitive abstract interpretation over the
// program — concrete values relationally paired with taint provenance
// over secret atoms, forking on secret-dependent branches up to a
// configurable path/step bound — and then validates its answer against
// the cycle-level simulator:
//
//   - Every LEAKY verdict ships a witness: two concrete secret
//     assignments whose full replay-attack runs (under the MicroScope
//     module, faulting and replaying the victim's handle) produce
//     different transient channel projections (sim/trace.ProjectTransient)
//     on the leak channel the analysis claimed. The leak is not a
//     possibility; it has been observed.
//   - Every PROVEN-SAFE verdict ships a certificate: an N-trial
//     randomized secret differential in which every trial's transient
//     cache, divider-port and divide-latency projections are identical
//     to the baseline. The abstract argument ("no secret-dependent
//     footprint reaches a squash shadow") is cross-checked dynamically;
//     if the differential ever diverges, the dynamic evidence wins and
//     the verdict is LEAKY.
//   - When the exploration exhausts its path or step budget before
//     covering the program and no witness is found, the verdict is
//     UNKNOWN — never a silent downgrade to "safe".
//
// The repair pass (repair.go) proposes fence insertion points in the
// spirit of Sakalis et al.'s delay-on-speculation: a fence before every
// leaking instruction and at both successors of every secret-dependent
// branch inside a squash shadow, iterated until the abstract pass finds
// no further sites. The repaired program goes back through the full
// verifier, so a successful repair ends in PROVEN-SAFE, witnessed by its
// own differential certificate.
package verify

import (
	"fmt"

	"microscope/analysis/sidechan"
	"microscope/analysis/static"
	"microscope/attack/victim"
	"microscope/sim/mem"
	"microscope/sim/trace"
)

// Verdict classifies a program.
type Verdict int

// Verdicts.
const (
	// Unknown: the exploration hit a resource bound before covering the
	// program, or a static site could not be dynamically confirmed.
	Unknown Verdict = iota
	// ProvenSafe: the abstract pass found no secret-dependent footprint
	// in any squash shadow AND the randomized differential held.
	ProvenSafe
	// Leaky: two concrete secret assignments were run through the
	// simulator and their transient channel projections diverge.
	Leaky
)

// String returns the report label.
func (v Verdict) String() string {
	switch v {
	case ProvenSafe:
		return "PROVEN-SAFE"
	case Leaky:
		return "LEAKY"
	case Unknown:
		return "UNKNOWN"
	}
	// Out-of-range values (a corrupted report) read as the weakest claim.
	return "UNKNOWN"
}

// MarshalText renders the verdict for JSON reports.
func (v Verdict) MarshalText() ([]byte, error) { return []byte(v.String()), nil }

// UnmarshalText parses a report label, so JSON reports round-trip.
func (v *Verdict) UnmarshalText(b []byte) error {
	switch string(b) {
	case "PROVEN-SAFE":
		*v = ProvenSafe
	case "LEAKY":
		*v = Leaky
	case "UNKNOWN":
		*v = Unknown
	default:
		return fmt.Errorf("verify: unknown verdict %q", b)
	}
	return nil
}

// Subject is one program under verification: a victim layout (program
// plus memory image) and its secret declaration.
type Subject struct {
	// Layout carries the program, entry point and data regions. The
	// verifier only reads it (dynamic runs install copies).
	Layout *victim.Layout
	// Secrets is the taint-source declaration. NewSubject derives it
	// from the layout's SecretRegions/SecretRegs.
	Secrets static.Secrets
	// Handle is the replay-handle address the dynamic runs arm. The
	// abstract pass quantifies over every possible handle; only the
	// dynamic witness/differential needs one concrete choice. Zero means
	// auto-derive: the layout's "handle" symbol if it has one, else the
	// first attacker-predictable load the exploration executes (best
	// effort — a load the transmitter data-depends on makes a useless
	// handle, since dependent work never issues under its fault).
	Handle mem.Addr
}

// NewSubject wraps a layout with its own secret declaration and, when
// the layout names one, its conventional replay handle.
func NewSubject(l *victim.Layout) *Subject {
	var sec static.Secrets
	sec.Regs = append(sec.Regs, l.SecretRegs...)
	for _, m := range l.SecretMems() {
		sec.Mems = append(sec.Mems, static.MemRange{Lo: m[0], Hi: m[1]})
	}
	sub := &Subject{Layout: l, Secrets: sec}
	if h, ok := l.Symbols["handle"]; ok {
		sub.Handle = h
	}
	return sub
}

// Config bounds the verifier.
type Config struct {
	// Static supplies the squash-shadow window and RDRAND taint policy.
	Static static.Config

	// MaxPaths bounds the number of explored paths, MaxStepsPerPath the
	// executed instructions on one path, and MaxTotalSteps the grand
	// total. Exhausting any of them makes the exploration incomplete
	// (verdict at best LEAKY, never PROVEN-SAFE).
	MaxPaths        int
	MaxStepsPerPath int
	MaxTotalSteps   int

	// Trials is the randomized-differential count backing PROVEN-SAFE.
	Trials int
	// MaxWitnessPairs bounds the candidate assignment pairs simulated
	// while searching for a LEAKY witness.
	MaxWitnessPairs int

	// Replays, HandlerLatency and MaxCycles parameterize each dynamic
	// run's replay recipe and budget.
	Replays        int
	HandlerLatency uint64
	MaxCycles      uint64

	// Seed drives the deterministic randomized differential.
	Seed int64
}

// DefaultConfig returns the bounds used by cmd/mscan and the golden
// verdicts.
func DefaultConfig() Config {
	return Config{
		Static:          static.DefaultConfig(),
		MaxPaths:        256,
		MaxStepsPerPath: 50_000,
		MaxTotalSteps:   500_000,
		Trials:          32,
		MaxWitnessPairs: 16,
		Replays:         6,
		HandlerLatency:  20_000,
		MaxCycles:       5_000_000,
		Seed:            0x5eed,
	}
}

// Site is one secret-dependent instruction the abstract pass found
// inside a squash shadow.
type Site struct {
	// PC is the instruction index, Instr its disassembly.
	PC    int    `json:"pc"`
	Instr string `json:"instr"`
	// Channel is the claimed leak channel (analysis/sidechan taxonomy).
	Channel sidechan.Channel `json:"channel"`
	// Handle/Distance locate the covering replay handle.
	Handle   int `json:"handle"`
	Distance int `json:"distance"`
	// Implicit marks sites reached only through a secret-dependent
	// branch (control flow), not through data taint on their operands.
	Implicit bool `json:"implicit,omitempty"`
	// Atoms is the set of secret atoms the site depends on.
	Atoms []Atom `json:"atoms"`
}

// Witness is the dynamic evidence behind a LEAKY verdict.
type Witness struct {
	// SitePC is the claimed site (-1 when the divergence was found by
	// the randomized differential rather than site-guided search).
	SitePC int `json:"sitePC"`
	// Channel is the channel whose projection diverges.
	Channel sidechan.Channel `json:"channel"`
	// A and B are the two secret assignments; ProjA/ProjB their runs'
	// transient projections.
	A     Assignment        `json:"a"`
	B     Assignment        `json:"b"`
	ProjA trace.Projections `json:"projA"`
	ProjB trace.Projections `json:"projB"`
}

// Certificate is the dynamic evidence behind a PROVEN-SAFE verdict.
type Certificate struct {
	// Trials is the number of randomized secret assignments run; every
	// one produced projections equal to Baseline.
	Trials   int               `json:"trials"`
	Baseline trace.Projections `json:"baseline"`
}

// Result is one verification outcome.
type Result struct {
	Program string  `json:"program"`
	Verdict Verdict `json:"verdict"`
	// Reason explains UNKNOWN verdicts and annotates the others.
	Reason string `json:"reason"`
	// Paths/Steps/Complete describe the abstract exploration.
	Paths    int  `json:"paths"`
	Steps    int  `json:"steps"`
	Complete bool `json:"complete"`
	// Sites are the abstract findings (empty for PROVEN-SAFE).
	Sites []Site `json:"sites,omitempty"`
	// Witness is set on LEAKY, Certificate on PROVEN-SAFE.
	Witness     *Witness     `json:"witness,omitempty"`
	Certificate *Certificate `json:"certificate,omitempty"`
}

// Verify classifies the subject. It returns an error only for malformed
// programs; resource exhaustion and simulation trouble yield an UNKNOWN
// result instead.
func Verify(sub *Subject, cfg Config) (*Result, error) {
	ex, err := explore(sub, cfg)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Program:  sub.Layout.Name,
		Paths:    ex.paths,
		Steps:    ex.steps,
		Complete: ex.complete,
		Sites:    ex.siteList(),
	}
	r := newRunner(sub, cfg, ex)

	if len(res.Sites) == 0 && ex.complete {
		cert, wit, err := r.differential(cfg.Trials)
		switch {
		case err != nil:
			res.Verdict = Unknown
			res.Reason = fmt.Sprintf("no abstract sites, but the differential failed to run: %v", err)
		case wit != nil:
			// The dynamic evidence outranks the abstract claim.
			res.Verdict = Leaky
			res.Witness = wit
			res.Reason = "abstract pass found no sites, but the randomized differential diverged (analysis gap; the dynamic evidence wins)"
		default:
			res.Verdict = ProvenSafe
			res.Certificate = cert
			res.Reason = fmt.Sprintf("no secret-dependent footprint in any squash shadow; %d-trial randomized differential identical on all channels", cert.Trials)
		}
		return res, nil
	}

	wit, werr := r.searchWitness(res.Sites)
	switch {
	case wit != nil:
		res.Verdict = Leaky
		res.Witness = wit
		res.Reason = fmt.Sprintf("witness pair diverges on the %s channel at pc %d", wit.Channel, wit.SitePC)
	case !ex.complete:
		res.Verdict = Unknown
		res.Reason = "exploration incomplete (" + ex.bailout + ") and no witness found within budget"
	default:
		res.Verdict = Unknown
		res.Reason = "abstract sites found but not dynamically confirmed within the witness budget"
		if werr != nil {
			res.Reason += ": " + werr.Error()
		}
	}
	return res, nil
}

// channelDigest picks the projection digest an attacker on ch observes.
// ChanRandom maps to the cache digest: replay-biased randomness is only
// observable through the downstream transmitter's cache footprint.
func channelDigest(p trace.Projections, ch sidechan.Channel) uint64 {
	switch ch {
	case sidechan.ChanPort:
		return p.Port
	case sidechan.ChanLatency:
		return p.Latency
	default:
		return p.Cache
	}
}

// divergingChannel returns the first channel whose digests differ, in
// cache, port, latency order.
func divergingChannel(a, b trace.Projections) (sidechan.Channel, bool) {
	switch {
	case a.Cache != b.Cache:
		return sidechan.ChanCacheSet, true
	case a.Port != b.Port:
		return sidechan.ChanPort, true
	case a.Latency != b.Latency:
		return sidechan.ChanLatency, true
	}
	return sidechan.ChanNone, false
}
