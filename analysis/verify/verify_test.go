package verify

import (
	"testing"

	"microscope/attack/victim"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

// Test pages, distinct from the builtin victims' addresses.
const (
	tHandlePage mem.Addr = 0x0060_0000
	tSecretPage mem.Addr = 0x0061_0000
	tProbePage  mem.Addr = 0x0062_0000
	tOutPage    mem.Addr = 0x0063_0000
)

const trw = mem.FlagUser | mem.FlagWritable

func le64(words ...uint64) []byte {
	out := make([]byte, 8*len(words))
	for i, w := range words {
		for b := 0; b < 8; b++ {
			out[8*i+b] = byte(w >> (8 * b))
		}
	}
	return out
}

// testLayout wraps a program with the standard four test pages; the
// secret page holds secretInit and is the declared secret region.
func testLayout(name string, prog *isa.Program, secretInit uint64) *victim.Layout {
	return &victim.Layout{
		Name:          name,
		Prog:          prog,
		SecretRegions: []string{"secret"},
		Symbols: map[string]mem.Addr{
			"handle": tHandlePage,
			"secret": tSecretPage,
		},
		Regions: []victim.Region{
			{Name: "handle", VA: tHandlePage, Size: mem.PageSize, Flags: trw, Init: le64(0xabcd)},
			{Name: "secret", VA: tSecretPage, Size: mem.PageSize, Flags: trw, Init: le64(secretInit)},
			{Name: "probe", VA: tProbePage, Size: mem.PageSize, Flags: trw},
			{Name: "out", VA: tOutPage, Size: mem.PageSize, Flags: trw},
		},
	}
}

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Trials = 8 // unit tests trade trials for speed; crossval keeps 32
	return cfg
}

// ctSafeProg computes on the secret without any secret-dependent
// address, divide or branch: constant-time by construction.
func ctSafeProg() *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, int64(tHandlePage)).
		MovImm(isa.R2, int64(tSecretPage)).
		MovImm(isa.R3, int64(tOutPage)).
		Load(isa.R4, isa.R2, 0). // secret value (fixed address)
		Load(isa.R5, isa.R1, 0). // replay handle
		Mul(isa.R6, isa.R4, isa.R4).
		Xor(isa.R6, isa.R6, isa.R5).
		Store(isa.R6, isa.R3, 0).
		Halt().
		MustBuild()
}

// leakyProg transmits the (masked) secret through a probe-array load —
// the Fig. 4 access pattern in miniature. The mask keeps every possible
// secret's probe address inside the probe page, so the repaired program
// stays runnable under whole-domain random secrets.
func leakyProg() *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, int64(tHandlePage)).
		MovImm(isa.R2, int64(tSecretPage)).
		MovImm(isa.R3, int64(tProbePage)).
		Load(isa.R4, isa.R2, 0).     // secret
		AndImm(isa.R4, isa.R4, 63).  // keep probe index in-page
		Load(isa.R5, isa.R1, 0).     // replay handle
		ShlImm(isa.R6, isa.R4, 6).   // line index
		Add(isa.R6, isa.R6, isa.R3). //
		Load(isa.R7, isa.R6, 0).     // transmit
		Halt().
		MustBuild()
}

// unknownProg loops a secret-dependent number of times: every iteration
// forks the tainted bound check, so a small path budget must bail out.
func unknownProg() *isa.Program {
	return isa.NewBuilder().
		MovImm(isa.R1, int64(tSecretPage)).
		Load(isa.R2, isa.R1, 0). // tainted bound
		MovImm(isa.R3, 0).
		Label("loop").
		AddImm(isa.R3, isa.R3, 1).
		Bne(isa.R3, isa.R2, "loop").
		Halt().
		MustBuild()
}

func TestVerifyProvenSafe(t *testing.T) {
	sub := NewSubject(testLayout("ctsafe", ctSafeProg(), 42))
	res, err := Verify(sub, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != ProvenSafe {
		t.Fatalf("verdict = %s (%s), want PROVEN-SAFE", res.Verdict, res.Reason)
	}
	if res.Certificate == nil || res.Certificate.Trials != 8 {
		t.Fatalf("missing or short certificate: %+v", res.Certificate)
	}
	if len(res.Sites) != 0 {
		t.Fatalf("unexpected sites: %+v", res.Sites)
	}
}

func TestVerifyLeakyWithWitness(t *testing.T) {
	sub := NewSubject(testLayout("leaky", leakyProg(), 5))
	res, err := Verify(sub, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Leaky {
		t.Fatalf("verdict = %s (%s), want LEAKY", res.Verdict, res.Reason)
	}
	w := res.Witness
	if w == nil {
		t.Fatal("LEAKY verdict without witness")
	}
	if w.ProjA.Equal(w.ProjB) {
		t.Fatalf("witness projections do not diverge: %+v vs %+v", w.ProjA, w.ProjB)
	}
	if channelDigest(w.ProjA, w.Channel) == channelDigest(w.ProjB, w.Channel) {
		t.Fatalf("witness does not diverge on its claimed channel %s", w.Channel)
	}
	// The abstract site must name the transmit load and its secret atom.
	found := false
	for _, s := range res.Sites {
		for _, a := range s.Atoms {
			if a.Kind == "mem" && a.Addr == tSecretPage {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no site names the secret word: %+v", res.Sites)
	}
}

func TestVerifyUnknownOnPathExplosion(t *testing.T) {
	cfg := testConfig()
	cfg.MaxPaths = 8
	sub := NewSubject(testLayout("explode", unknownProg(), 1000))
	res, err := Verify(sub, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != Unknown {
		t.Fatalf("verdict = %s (%s), want UNKNOWN", res.Verdict, res.Reason)
	}
	if res.Complete {
		t.Fatal("exploration reported complete despite the path budget")
	}
}

func TestRepairLeakyToProvenSafe(t *testing.T) {
	sub := NewSubject(testLayout("leaky", leakyProg(), 5))
	rr, err := Repair(sub, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rr.Inserted == 0 {
		t.Fatal("repair inserted no fences")
	}
	if rr.Result.Verdict != ProvenSafe {
		t.Fatalf("repaired verdict = %s (%s), want PROVEN-SAFE", rr.Result.Verdict, rr.Result.Reason)
	}
	// The original program must still be leaky (Repair must not mutate).
	if sub.Layout.Prog.Len() != leakyProg().Len() {
		t.Fatal("Repair mutated the subject's program")
	}
}

func TestAtomTableOverflow(t *testing.T) {
	tab := newAtomTable()
	var last uint64
	for i := 0; i < 80; i++ {
		last = tab.mask(Atom{Kind: "mem", Addr: mem.Addr(i * 8)})
	}
	if last != 1<<overflowBit {
		t.Fatalf("atom 80 mask = %#x, want overflow bit", last)
	}
	atoms := tab.resolve(last)
	if len(atoms) != 1 || atoms[0].Kind != "overflow" {
		t.Fatalf("resolve(overflow) = %+v", atoms)
	}
}
