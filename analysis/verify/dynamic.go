package verify

import (
	"fmt"
	"strings"

	"microscope/attack/microscope"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/kernel"
	"microscope/sim/mem"
	"microscope/sim/trace"
)

// Assignment is one concrete valuation of the secret atoms. The empty
// assignment is the baseline: the layout's own initial image.
type Assignment struct {
	Regs []RegVal `json:"regs,omitempty"`
	Mems []MemVal `json:"mems,omitempty"`
	// Seed replaces the core's RDRAND seed when SeedSet.
	Seed    uint64 `json:"seed,omitempty"`
	SeedSet bool   `json:"seedSet,omitempty"`
}

// RegVal assigns a declared secret-home register. Because such a
// register's secret is materialized as an immediate in the program text
// (e.g. modexp's exponent), the runner both sets the architectural
// register and patches every MovImm/FLoadImm writing it.
type RegVal struct {
	Reg isa.Reg `json:"reg"`
	Val uint64  `json:"val"`
}

// MemVal assigns one 8-byte-aligned word of secret memory.
type MemVal struct {
	Addr mem.Addr `json:"addr"`
	Val  uint64   `json:"val"`
}

// key canonicalizes the assignment for run memoization.
func (a Assignment) key() string {
	var sb strings.Builder
	for _, rv := range a.Regs {
		fmt.Fprintf(&sb, "r%d=%#x;", rv.Reg, rv.Val)
	}
	for _, mv := range a.Mems {
		fmt.Fprintf(&sb, "m%#x=%#x;", mv.Addr, mv.Val)
	}
	if a.SeedSet {
		fmt.Fprintf(&sb, "s=%#x;", a.Seed)
	}
	return sb.String()
}

// runner drives full replay-attack runs of the subject under concrete
// secret assignments and projects their transient footprints.
type runner struct {
	sub      *Subject
	cfg      Config
	ex       *explorer
	handleVA mem.Addr
	memo     map[string]trace.Projections
}

func newRunner(sub *Subject, cfg Config, ex *explorer) *runner {
	h := sub.Handle
	if h == 0 && ex != nil {
		h = ex.handleVA
	}
	return &runner{sub: sub, cfg: cfg, ex: ex, handleVA: h, memo: make(map[string]trace.Projections)}
}

// run returns the transient projections of one full replay-attack run
// under the assignment, memoized on the assignment.
func (r *runner) run(asg Assignment) (trace.Projections, error) {
	k := asg.key()
	if p, ok := r.memo[k]; ok {
		return p, nil
	}
	p, err := r.runOne(asg)
	if err == nil {
		r.memo[k] = p
	}
	return p, err
}

// runOne assembles a fresh platform (mirroring the experiments rig),
// installs the subject with the assignment applied, arms the MicroScope
// module on the replay handle, and runs to completion.
func (r *runner) runOne(asg Assignment) (trace.Projections, error) {
	if r.handleVA == 0 {
		return trace.Projections{}, fmt.Errorf("verify: no replay handle known for %q", r.sub.Layout.Name)
	}
	ccfg := cpu.DefaultConfig()
	if asg.SeedSet {
		ccfg.RandSeed = asg.Seed
	}
	phys := mem.NewPhysMem(64 << 20)
	core := cpu.NewCore(ccfg, phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	m := microscope.NewModule(k)
	vp, err := k.NewProcess("victim")
	if err != nil {
		return trace.Projections{}, err
	}
	k.Schedule(0, vp)

	lay := r.sub.Layout
	if len(asg.Regs) > 0 {
		patched := *lay
		patched.Prog = patchSecretImms(lay.Prog, asg.Regs)
		lay = &patched
	}
	if err := lay.Install(k, vp); err != nil {
		return trace.Projections{}, err
	}
	for _, mv := range asg.Mems {
		var b [8]byte
		for i := range b {
			b[i] = byte(mv.Val >> (8 * uint(i)))
		}
		if err := k.WriteVirt(vp, mv.Addr, b[:]); err != nil {
			return trace.Projections{}, err
		}
	}

	rcp := &microscope.Recipe{
		Name:           "verify-" + lay.Name,
		Victim:         vp,
		Handle:         r.handleVA,
		HandlerLatency: r.cfg.HandlerLatency,
		MaxReplays:     r.cfg.Replays,
	}
	if err := m.Install(rcp); err != nil {
		return trace.Projections{}, err
	}

	rec := trace.NewRecorder()
	core.SetTracer(rec)
	lay.Start(k, 0)
	for _, rv := range asg.Regs {
		core.Context(0).SetReg(rv.Reg, rv.Val)
	}
	core.Run(r.cfg.MaxCycles)
	if !core.Halted() {
		return trace.Projections{}, fmt.Errorf("verify: run of %q exceeded %d cycles (victim at pc=%d)",
			lay.Name, r.cfg.MaxCycles, core.Context(0).PC())
	}
	return trace.ProjectTransient(rec.Events()), nil
}

// PatchProgram returns a copy of p with every immediate-load of an
// assigned secret-home register rewritten to the assigned value — the
// same program transformation the verifier's dynamic runs apply, so
// external replayers (the SpecSan cross-validation in
// attack/experiments) execute the exact program a witness was found on.
func (a Assignment) PatchProgram(p *isa.Program) *isa.Program {
	return patchSecretImms(p, a.Regs)
}

// patchSecretImms rewrites every immediate-load of an assigned secret-
// home register to the assigned value.
func patchSecretImms(p *isa.Program, regs []RegVal) *isa.Program {
	vals := make(map[isa.Reg]uint64, len(regs))
	for _, rv := range regs {
		vals[rv.Reg] = rv.Val
	}
	out := &isa.Program{Instrs: append([]isa.Instr(nil), p.Instrs...), Labels: p.Labels}
	for i, in := range out.Instrs {
		if in.Op != isa.OpMovImm && in.Op != isa.OpFLoadImm {
			continue
		}
		if v, ok := vals[in.Rd]; ok {
			out.Instrs[i].Imm = int64(v)
		}
	}
	return out
}
