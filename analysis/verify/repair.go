package verify

import (
	"fmt"
	"sort"

	"microscope/attack/victim"
	"microscope/sim/isa"
)

// Fence repair in the spirit of Sakalis et al.'s delay-on-speculation:
// a leaking program is patched by inserting fences that keep every
// secret-dependent transmitter from issuing speculatively. In this
// simulator a fence blocks all younger dispatch until it retires, and a
// fence inside a faulting handle's squash shadow never retires — so a
// fence placed immediately before a secret-dependent access starves the
// whole replayed shadow behind it.
//
// The plan, derived from the abstract exploration:
//
//   - a fence immediately before every channel-bearing instruction that
//     ever executes with tainted operands (tainted-address loads and
//     stores, tainted divides, rdrand), whether or not a replay shadow
//     was open — ordinary branch-mispredict shadows expose them too;
//   - a fence at BOTH successors (fall-through and target) of every
//     branch whose condition ever carried taint, so neither side of a
//     secret branch can issue transiently and the branch direction
//     stops being projectable.
//
// Inserting fences shifts pcs and can change what the exploration sees
// (e.g. modexp's untainted pivot loads are themselves replay handles
// that reopen shadows over the next iteration), so planning is iterated
// — explore, patch, re-explore — until a round proposes nothing new,
// then the patched program goes through the full verifier, differential
// included. A successful repair therefore terminates in a PROVEN-SAFE
// verdict with its own certificate.

// maxRepairRounds bounds the explore/patch iteration.
const maxRepairRounds = 8

// RepairResult describes one repair attempt.
type RepairResult struct {
	// Rounds is the number of patch rounds applied, Inserted the total
	// fences added, Fences their pcs in the final program.
	Rounds   int   `json:"rounds"`
	Inserted int   `json:"inserted"`
	Fences   []int `json:"fences"`
	// Result is the full verification of the repaired program.
	Result *Result `json:"result"`
	// Layout carries the repaired program (regions unchanged).
	Layout *victim.Layout `json:"-"`
}

// Repair iteratively fences the subject and re-verifies the patched
// program. It does not modify sub.
func Repair(sub *Subject, cfg Config) (*RepairResult, error) {
	lay := *sub.Layout
	lay.Name = sub.Layout.Name + "+fences"
	rr := &RepairResult{}

	for round := 0; round < maxRepairRounds; round++ {
		cur := &Subject{Layout: &lay, Secrets: sub.Secrets, Handle: sub.Handle}
		ex, err := explore(cur, cfg)
		if err != nil {
			return nil, err
		}
		plan := repairPoints(ex)
		if len(plan) == 0 {
			break
		}
		patched, _, err := isa.InsertBefore(lay.Prog, plan, isa.Instr{Op: isa.OpFence})
		if err != nil {
			return nil, fmt.Errorf("verify: repair round %d: %v", round, err)
		}
		// Entry follows target semantics: it lands on a guard fence
		// inserted at the entry point (executing it first is harmless).
		shift := sort.SearchInts(plan, lay.Entry)
		lay.Entry += shift
		lay.Prog = patched
		rr.Rounds++
		rr.Inserted += len(plan)
	}

	for pc, in := range lay.Prog.Instrs {
		if in.Op == isa.OpFence {
			rr.Fences = append(rr.Fences, pc)
		}
	}
	res, err := Verify(&Subject{Layout: &lay, Secrets: sub.Secrets, Handle: sub.Handle}, cfg)
	if err != nil {
		return nil, err
	}
	rr.Result = res
	rr.Layout = &lay
	return rr, nil
}

// repairPoints derives this round's sorted fence insertion points from
// the exploration, skipping points that are already guarded.
func repairPoints(ex *explorer) []int {
	prog := ex.prog
	set := make(map[int]bool)
	for pc := range ex.hotOps {
		if pc > 0 && prog.Instrs[pc-1].Op == isa.OpFence {
			continue // already guarded
		}
		set[pc] = true
	}
	for bpc := range ex.taintedBranches {
		in := prog.Instrs[bpc]
		for _, s := range []int{bpc + 1, in.Target} {
			if s >= 0 && s < prog.Len() && prog.Instrs[s].Op != isa.OpFence {
				set[s] = true
			}
		}
	}
	plan := make([]int, 0, len(set))
	for pc := range set {
		plan = append(plan, pc)
	}
	sort.Ints(plan)
	return plan
}
