// Package sidechan provides side-channel analysis utilities: threshold
// calibration and classification for latency traces, replay-confidence
// estimation, and the taxonomy of SGX side channels from the paper's
// Table 1.
package sidechan

import (
	"fmt"
	"sort"

	"microscope/analysis/stats"
)

// CalibrateThreshold derives a contention threshold from a quiet
// (no-contention) trace, as the paper does for Fig. 10: "all but 4 of the
// samples take less than 120 cycles. Hence, we set the contention
// threshold to slightly less than 120 cycles." The returned threshold is
// the given quantile of the quiet distribution plus a small guard band.
func CalibrateThreshold(quiet []uint64, quantile float64, guard uint64) uint64 {
	if len(quiet) == 0 {
		return guard
	}
	q := stats.QuantileU64(quiet, quantile)
	return uint64(q) + guard
}

// Classification is the verdict of a threshold classifier over a trace.
type Classification struct {
	Threshold uint64
	Over      int
	Total     int
}

// Rate returns the fraction of samples over threshold.
func (c Classification) Rate() float64 {
	if c.Total == 0 {
		return 0
	}
	return float64(c.Over) / float64(c.Total)
}

// Classify counts over-threshold samples.
func Classify(samples []uint64, threshold uint64) Classification {
	return Classification{
		Threshold: threshold,
		Over:      stats.CountAbove(samples, threshold),
		Total:     len(samples),
	}
}

// DistinguishResult compares two traces under one threshold — the
// Fig. 10a-vs-10b decision.
type DistinguishResult struct {
	Threshold  uint64
	OverA      int
	OverB      int
	Separation float64 // OverB / max(OverA, 1)
}

// Distinguish calibrates on trace A (quiet) and classifies both traces.
// A separation ≫ 1 means the traces are reliably distinguishable.
func Distinguish(a, b []uint64, quantile float64, guard uint64) DistinguishResult {
	th := CalibrateThreshold(a, quantile, guard)
	overA := stats.CountAbove(a, th)
	overB := stats.CountAbove(b, th)
	den := overA
	if den == 0 {
		den = 1
	}
	return DistinguishResult{
		Threshold:  th,
		OverA:      overA,
		OverB:      overB,
		Separation: float64(overB) / float64(den),
	}
}

// MajorityVote reduces per-replay boolean observations to a verdict and a
// confidence (fraction agreeing with the majority) — the denoising
// primitive: each replay is one noisy sample (§4.1.4 step 6).
func MajorityVote(observations []bool) (verdict bool, confidence float64) {
	if len(observations) == 0 {
		return false, 0
	}
	yes := 0
	for _, o := range observations {
		if o {
			yes++
		}
	}
	verdict = yes*2 >= len(observations)
	agree := yes
	if !verdict {
		agree = len(observations) - yes
	}
	return verdict, float64(agree) / float64(len(observations))
}

// ReplaysToConfidence returns the smallest prefix of observations whose
// majority vote reaches the target confidence, or -1 if never reached.
func ReplaysToConfidence(observations []bool, target float64) int {
	for n := 1; n <= len(observations); n++ {
		if _, conf := MajorityVote(observations[:n]); conf >= target {
			return n
		}
	}
	return -1
}

// LatencyBands classifies probe latencies into named bands (the L1 /
// L2-L3 / memory bands of Fig. 11). Bounds are upper-exclusive latencies
// per band, ascending; the last band is unbounded.
type LatencyBands struct {
	Names  []string
	Bounds []uint64 // len = len(Names)-1
}

// DefaultCacheBands matches the simulator's hierarchy latencies.
func DefaultCacheBands() LatencyBands {
	return LatencyBands{
		Names:  []string{"L1", "L2/L3", "Mem"},
		Bounds: []uint64{10, 100},
	}
}

// Band returns the band index and name for a latency.
func (b LatencyBands) Band(lat uint64) (int, string) {
	for i, bound := range b.Bounds {
		if lat < bound {
			return i, b.Names[i]
		}
	}
	return len(b.Names) - 1, b.Names[len(b.Names)-1]
}

// BandCounts tallies samples per band.
func (b LatencyBands) BandCounts(samples []uint64) map[string]int {
	out := make(map[string]int, len(b.Names))
	for _, s := range samples {
		_, name := b.Band(s)
		out[name]++
	}
	return out
}

// DistinctBands returns how many different bands the samples span —
// Fig. 11's replay 0 spans ≥3 bands, replays 1-2 exactly 2.
func (b LatencyBands) DistinctBands(samples []uint64) int {
	seen := map[int]bool{}
	for _, s := range samples {
		i, _ := b.Band(s)
		seen[i] = true
	}
	return len(seen)
}

// FormatBandTable renders per-address band assignments as the Fig. 11
// presentation (one row per cache line).
func FormatBandTable(lats []uint64, bands LatencyBands) string {
	var sb []byte
	for i, l := range lats {
		_, name := bands.Band(l)
		sb = append(sb, fmt.Sprintf("line %2d: %5d cycles  %s\n", i, l, name)...)
	}
	return string(sb)
}

// SortedCopy returns a sorted copy of xs (test/report helper).
func SortedCopy(xs []uint64) []uint64 {
	out := append([]uint64(nil), xs...)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
