package sidechan

import (
	"fmt"

	"microscope/sim/isa"
)

// This file extends the Table 1 taxonomy from whole attacks down to
// individual instructions: every isa.Op is assigned exactly one primary
// leak-channel class, the microarchitectural resource whose
// secret-dependent footprint a MicroScope replay amplifies. The static
// analyzer (analysis/static) uses these classes to label its findings;
// the classification mirrors the paper's attack suite — cache-set
// footprints (§5/§6.2 AES), execution-port contention on the
// non-pipelined divider (§6.1, Fig. 6), data-dependent latency from the
// FP subnormal microcode assist (§5, Fig. 5), and architectural
// randomness replay (§7.2 RDRAND bias).

// Channel is a leak-channel class.
type Channel int

// Declared channel classes.
const (
	// ChanNone: the op's execution leaves no secret-distinguishable
	// footprint on shared resources (fixed-latency ALU work, fences,
	// control transfers, transaction markers).
	ChanNone Channel = iota
	// ChanCacheSet: the op touches data memory, so its address selects a
	// cache set/line — the Prime+Probe / Flush+Reload footprint the AES
	// T-table attack reads.
	ChanCacheSet
	// ChanPort: the op occupies the non-pipelined divider, observable by
	// an SMT sibling as issue-port contention (the Fig. 6 channel).
	ChanPort
	// ChanLatency: the op's own latency is data-dependent — the FP
	// subnormal microcode assist the Fig. 5 attack times.
	ChanLatency
	// ChanRandom: the op draws fresh architectural randomness on every
	// replay, so squash-and-retry biases its retired value (§7.2).
	ChanRandom
	// NumChannels is the number of declared classes.
	NumChannels int = iota
)

// String returns the report label of the channel class.
func (c Channel) String() string {
	switch c {
	case ChanNone:
		return "none"
	case ChanCacheSet:
		return "cache-set"
	case ChanPort:
		return "port-contention"
	case ChanLatency:
		return "latency"
	case ChanRandom:
		return "random-replay"
	}
	return fmt.Sprintf("channel(%d)", int(c))
}

// MarshalText renders the channel for JSON/text reports.
func (c Channel) MarshalText() ([]byte, error) { return []byte(c.String()), nil }

// UnmarshalText parses a report label, so JSON reports round-trip.
func (c *Channel) UnmarshalText(b []byte) error {
	for ch := Channel(0); int(ch) < NumChannels; ch++ {
		if ch.String() == string(b) {
			*c = ch
			return nil
		}
	}
	return fmt.Errorf("sidechan: unknown channel %q", b)
}

// opChannels is the total Op -> primary Channel map. Ops absent from the
// map default to ChanNone; the taxonomy test asserts every defined op is
// listed here explicitly so new ops cannot go silently unclassified.
var opChannels = map[isa.Op]Channel{
	isa.OpNop:      ChanNone,
	isa.OpMovImm:   ChanNone,
	isa.OpMov:      ChanNone,
	isa.OpAdd:      ChanNone,
	isa.OpAddImm:   ChanNone,
	isa.OpSub:      ChanNone,
	isa.OpAnd:      ChanNone,
	isa.OpAndImm:   ChanNone,
	isa.OpOr:       ChanNone,
	isa.OpXor:      ChanNone,
	isa.OpShl:      ChanNone,
	isa.OpShlImm:   ChanNone,
	isa.OpShr:      ChanNone,
	isa.OpShrImm:   ChanNone,
	isa.OpMul:      ChanNone, // pipelined; fixed MulLat
	isa.OpDiv:      ChanPort, // non-pipelined divider occupancy
	isa.OpFMov:     ChanNone,
	isa.OpFAdd:     ChanNone, // pipelined; fixed FAddLat
	isa.OpFMul:     ChanNone,
	isa.OpFDiv:     ChanLatency, // subnormal microcode assist (also divider port)
	isa.OpFLoadImm: ChanNone,
	isa.OpLoad:     ChanCacheSet,
	isa.OpLoad32:   ChanCacheSet,
	isa.OpLoadF:    ChanCacheSet,
	isa.OpStore:    ChanCacheSet,
	isa.OpStore32:  ChanCacheSet,
	isa.OpStoreF:   ChanCacheSet,
	isa.OpBeq:      ChanNone, // BTB channels are below this sim's fidelity
	isa.OpBne:      ChanNone,
	isa.OpBlt:      ChanNone,
	isa.OpBge:      ChanNone,
	isa.OpJmp:      ChanNone,
	isa.OpRdtsc:    ChanNone,
	isa.OpRdrand:   ChanRandom,
	isa.OpFence:    ChanNone,
	isa.OpTxBegin:  ChanNone,
	isa.OpTxEnd:    ChanNone,
	isa.OpTxAbort:  ChanNone,
	isa.OpHalt:     ChanNone,
}

// OpChannel returns the primary leak-channel class of op. The mapping is
// total over defined ops and defaults to ChanNone for undefined ones.
func OpChannel(op isa.Op) Channel { return opChannels[op] }

// OpChannelDeclared reports whether op has an explicit entry in the
// taxonomy (as opposed to falling through to the ChanNone default).
func OpChannelDeclared(op isa.Op) bool {
	_, ok := opChannels[op]
	return ok
}
