package sidechan

import (
	"strings"
	"testing"
)

func TestCalibrateThreshold(t *testing.T) {
	quiet := make([]uint64, 100)
	for i := range quiet {
		quiet[i] = 50
	}
	quiet[99] = 200 // one outlier
	th := CalibrateThreshold(quiet, 0.98, 5)
	if th < 55 || th > 100 {
		t.Errorf("threshold = %d, want ~55", th)
	}
	if CalibrateThreshold(nil, 0.99, 7) != 7 {
		t.Error("empty calibration != guard")
	}
}

func TestClassify(t *testing.T) {
	c := Classify([]uint64{10, 20, 150, 300}, 100)
	if c.Over != 2 || c.Total != 4 {
		t.Errorf("classify = %+v", c)
	}
	if c.Rate() != 0.5 {
		t.Errorf("rate = %v", c.Rate())
	}
	if (Classification{}).Rate() != 0 {
		t.Error("empty rate != 0")
	}
}

func TestDistinguish(t *testing.T) {
	quiet := make([]uint64, 1000)
	noisy := make([]uint64, 1000)
	for i := range quiet {
		quiet[i] = 60
		noisy[i] = 60
	}
	// 64 contended samples in the "div" trace, 4 outliers in the "mul".
	for i := 0; i < 4; i++ {
		quiet[i] = 200
	}
	for i := 0; i < 64; i++ {
		noisy[i] = 200
	}
	res := Distinguish(quiet, noisy, 0.995, 2)
	if res.OverB <= res.OverA {
		t.Errorf("no separation: %+v", res)
	}
	if res.Separation < 10 {
		t.Errorf("separation = %v, want >= 10 (paper: 16x)", res.Separation)
	}
}

func TestMajorityVote(t *testing.T) {
	v, conf := MajorityVote([]bool{true, true, true, false})
	if !v || conf != 0.75 {
		t.Errorf("vote = %t, %v", v, conf)
	}
	v, conf = MajorityVote([]bool{false, false})
	if v || conf != 1.0 {
		t.Errorf("vote = %t, %v", v, conf)
	}
	if _, conf := MajorityVote(nil); conf != 0 {
		t.Error("empty vote confidence != 0")
	}
}

func TestReplaysToConfidence(t *testing.T) {
	obs := []bool{true, false, true, true, true, true}
	n := ReplaysToConfidence(obs, 0.8)
	if n != 1 { // first observation alone has confidence 1.0
		t.Errorf("n = %d, want 1", n)
	}
	// Alternating observations never reach 0.9.
	alt := []bool{true, false, true, false}
	if got := ReplaysToConfidence(alt, 0.9); got != 1 {
		// prefix of length 1 has confidence 1.0
		t.Errorf("alt = %d", got)
	}
	if got := ReplaysToConfidence(nil, 0.5); got != -1 {
		t.Errorf("empty = %d, want -1", got)
	}
}

func TestLatencyBands(t *testing.T) {
	b := DefaultCacheBands()
	cases := map[uint64]string{4: "L1", 16: "L2/L3", 56: "L2/L3", 276: "Mem"}
	for lat, want := range cases {
		if _, name := b.Band(lat); name != want {
			t.Errorf("Band(%d) = %s, want %s", lat, name, want)
		}
	}
	counts := b.BandCounts([]uint64{4, 4, 56, 276})
	if counts["L1"] != 2 || counts["L2/L3"] != 1 || counts["Mem"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	if b.DistinctBands([]uint64{4, 56, 276}) != 3 {
		t.Error("distinct bands wrong")
	}
	if b.DistinctBands([]uint64{4, 4}) != 1 {
		t.Error("single band wrong")
	}
	tbl := FormatBandTable([]uint64{4, 276}, b)
	if !strings.Contains(tbl, "L1") || !strings.Contains(tbl, "Mem") {
		t.Errorf("band table: %s", tbl)
	}
}

func TestTable1Structure(t *testing.T) {
	attacks := Table1()
	if len(attacks) < 15 {
		t.Fatalf("registry has %d attacks", len(attacks))
	}
	// The paper's claim: MicroScope is the unique fine-grain,
	// high-resolution, no-noise attack.
	a, unique := UniqueCell(attacks, FineGrain, HighResolution, false)
	if !unique {
		t.Fatal("fine-grain/high-res/no-noise cell not unique")
	}
	if !strings.Contains(a.Name, "MicroScope") {
		t.Errorf("unique attack = %q", a.Name)
	}
	// The noisy fine-grain/high-res cell holds the CacheZoom family.
	if _, unique := UniqueCell(attacks, FineGrain, HighResolution, true); unique {
		t.Error("noisy high-res cell unexpectedly unique")
	}
	out := FormatTable1(attacks)
	for _, want := range []string{"MicroScope", "PortSmash", "SGX-Step", "No Noise", "With Noise"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 rendering missing %q", want)
		}
	}
}

func TestSortedCopy(t *testing.T) {
	in := []uint64{3, 1, 2}
	out := SortedCopy(in)
	if out[0] != 1 || out[2] != 3 {
		t.Errorf("sorted = %v", out)
	}
	if in[0] != 3 {
		t.Error("input mutated")
	}
}

func TestEntropyBits(t *testing.T) {
	if got := EntropyBits(0.5); got < 0.999 || got > 1.001 {
		t.Errorf("H(0.5) = %v", got)
	}
	if EntropyBits(0) != 0 || EntropyBits(1) != 0 {
		t.Error("H at extremes not 0")
	}
	// Symmetry.
	if d := EntropyBits(0.2) - EntropyBits(0.8); d > 1e-12 || d < -1e-12 {
		t.Error("entropy not symmetric")
	}
}

func TestBinaryChannelCapacity(t *testing.T) {
	if got := BinaryChannelCapacity(0); got != 1 {
		t.Errorf("C(0) = %v", got)
	}
	if got := BinaryChannelCapacity(0.5); got > 1e-12 {
		t.Errorf("C(0.5) = %v", got)
	}
	// A noisy channel carries strictly less than a clean one.
	if BinaryChannelCapacity(0.1) >= BinaryChannelCapacity(0.01) {
		t.Error("capacity not decreasing in noise")
	}
	// Symmetric in p vs 1-p (relabeling), up to floating-point noise.
	if d := BinaryChannelCapacity(0.9) - BinaryChannelCapacity(0.1); d > 1e-9 || d < -1e-9 {
		t.Errorf("capacity not symmetric (diff %v)", d)
	}
}

func TestObservationErrorRate(t *testing.T) {
	obs := []bool{true, true, false, true}
	if got := ObservationErrorRate(obs, true); got != 0.25 {
		t.Errorf("error rate = %v", got)
	}
	if ObservationErrorRate(nil, true) != 0 {
		t.Error("empty error rate not 0")
	}
}

func TestReplaysForErrorBound(t *testing.T) {
	if got := ReplaysForErrorBound(0, 1e-3); got != 1 {
		t.Errorf("noiseless = %d", got)
	}
	if got := ReplaysForErrorBound(0.5, 1e-3); got != -1 {
		t.Errorf("useless channel = %d", got)
	}
	n1 := ReplaysForErrorBound(0.1, 1e-3)
	n2 := ReplaysForErrorBound(0.4, 1e-3)
	if n1 <= 0 || n2 <= n1 {
		t.Errorf("bounds not increasing in noise: %d, %d", n1, n2)
	}
	// 0.1 error, 1e-3 target: exp(-2n*0.16) <= 1e-3 -> n >= 21.6.
	if n1 != 22 {
		t.Errorf("n(0.1, 1e-3) = %d, want 22", n1)
	}
}

func TestAnalyzeReplayChannel(t *testing.T) {
	obs := []bool{true, false, true, true, true, true, true, true, true, true}
	rep := AnalyzeReplayChannel(obs, true)
	if rep.ErrorRate != 0.1 {
		t.Errorf("error rate = %v", rep.ErrorRate)
	}
	if rep.BitsPerReplay <= 0.5 || rep.BitsPerReplay >= 1 {
		t.Errorf("bits/replay = %v", rep.BitsPerReplay)
	}
	if rep.ReplaysFor1e3 != 22 {
		t.Errorf("replays for 1e-3 = %d", rep.ReplaysFor1e3)
	}
	if rep.ObservedDenoise != 1 {
		t.Errorf("observed denoise = %d", rep.ObservedDenoise)
	}
}
