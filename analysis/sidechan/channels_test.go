package sidechan

import (
	"testing"

	"microscope/sim/isa"
)

// TestOpChannelTotal asserts the instruction-level taxonomy is total and
// unambiguous: every defined isa.Op has exactly one explicitly declared
// channel class, and that class is one of the declared constants. Adding
// an op to the ISA without classifying it fails here.
func TestOpChannelTotal(t *testing.T) {
	for i := 0; i < isa.OpCount; i++ {
		op := isa.Op(i)
		if !op.Valid() {
			t.Fatalf("op %d inside OpCount is not Valid()", i)
		}
		if !OpChannelDeclared(op) {
			t.Errorf("op %s (%d) has no declared channel class", op, i)
			continue
		}
		c := OpChannel(op)
		if c < 0 || int(c) >= NumChannels {
			t.Errorf("op %s maps to out-of-range channel %d", op, int(c))
		}
	}
	// No stale entries for ops outside the ISA.
	if len(opChannels) != isa.OpCount {
		t.Errorf("taxonomy has %d entries, ISA has %d ops", len(opChannels), isa.OpCount)
	}
}

// TestOpChannelConsistency pins the classification the attacks rely on.
func TestOpChannelConsistency(t *testing.T) {
	for i := 0; i < isa.OpCount; i++ {
		op := isa.Op(i)
		c := OpChannel(op)
		if op.IsMem() && c != ChanCacheSet {
			t.Errorf("memory op %s classified %s, want %s", op, c, ChanCacheSet)
		}
		if !op.IsMem() && c == ChanCacheSet {
			t.Errorf("non-memory op %s classified %s", op, c)
		}
	}
	if c := OpChannel(isa.OpDiv); c != ChanPort {
		t.Errorf("div classified %s, want %s", c, ChanPort)
	}
	if c := OpChannel(isa.OpFDiv); c != ChanLatency {
		t.Errorf("fdiv classified %s, want %s", c, ChanLatency)
	}
	if c := OpChannel(isa.OpRdrand); c != ChanRandom {
		t.Errorf("rdrand classified %s, want %s", c, ChanRandom)
	}
}

// TestChannelString ensures every declared class has a distinct label
// (reports key findings by this string).
func TestChannelString(t *testing.T) {
	seen := map[string]Channel{}
	for c := Channel(0); int(c) < NumChannels; c++ {
		s := c.String()
		if s == "" {
			t.Errorf("channel %d has empty label", int(c))
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("channels %d and %d share label %q", int(prev), int(c), s)
		}
		seen[s] = c
	}
}
