package sidechan

import "math"

// Leakage quantification for replay channels. Each replay yields one
// noisy observation of a secret bit; the channel is a binary symmetric
// channel with some error probability, and replaying multiplies the
// attacker's samples — MicroScope's whole point is driving the effective
// error rate to zero within one logical victim run.

// EntropyBits returns the binary entropy H(p) in bits.
func EntropyBits(p float64) float64 {
	if p <= 0 || p >= 1 {
		return 0
	}
	return -p*math.Log2(p) - (1-p)*math.Log2(1-p)
}

// BinaryChannelCapacity returns the capacity (bits per observation) of a
// binary symmetric channel with crossover probability p: 1 − H(p).
func BinaryChannelCapacity(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	if p > 0.5 {
		p = 1 - p
	}
	return 1 - EntropyBits(p)
}

// ObservationErrorRate returns the fraction of observations that disagree
// with the true bit.
func ObservationErrorRate(obs []bool, truth bool) float64 {
	if len(obs) == 0 {
		return 0
	}
	wrong := 0
	for _, o := range obs {
		if o != truth {
			wrong++
		}
	}
	return float64(wrong) / float64(len(obs))
}

// ReplaysForErrorBound returns the number of replays a majority vote
// needs so that the Chernoff bound on its error probability drops below
// target, given per-observation error rate p (< 0.5). It returns 1 for a
// noiseless channel and -1 when p ≥ 0.5 (no majority can help).
//
// Chernoff: P(majority wrong) ≤ exp(−2n(0.5−p)²).
func ReplaysForErrorBound(p, target float64) int {
	if p <= 0 {
		return 1
	}
	if p >= 0.5 || target <= 0 || target >= 1 {
		return -1
	}
	gap := 0.5 - p
	n := math.Log(target) / (-2 * gap * gap)
	out := int(math.Ceil(n))
	if out < 1 {
		out = 1
	}
	return out
}

// LeakageReport summarizes a replay channel's quality.
type LeakageReport struct {
	ErrorRate       float64
	BitsPerReplay   float64
	ReplaysFor1e3   int // replays for ≤0.1% majority error
	ObservedDenoise int // replays the actual majority vote needed (from ReplaysToConfidence)
}

// AnalyzeReplayChannel builds a LeakageReport from per-replay boolean
// observations of a known truth bit.
func AnalyzeReplayChannel(obs []bool, truth bool) LeakageReport {
	p := ObservationErrorRate(obs, truth)
	return LeakageReport{
		ErrorRate:       p,
		BitsPerReplay:   BinaryChannelCapacity(p),
		ReplaysFor1e3:   ReplaysForErrorBound(p, 1e-3),
		ObservedDenoise: ReplaysToConfidence(obs, 0.9),
	}
}
