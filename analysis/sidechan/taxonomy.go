package sidechan

import (
	"fmt"
	"sort"
	"strings"
)

// This file encodes the paper's Table 1: the characterization of side
// channel attacks on Intel SGX by spatial granularity, temporal
// resolution and noise. The `cmd/microscope table1` tool and the Table 1
// bench regenerate the table from this registry.

// Spatial is the spatial granularity of an attack.
type Spatial int

// Spatial granularities.
const (
	CoarseGrain Spatial = iota // page level or coarser
	FineGrain                  // cache line or finer
)

// String returns the label used in Table 1.
func (s Spatial) String() string {
	if s == CoarseGrain {
		return "Coarse Grain"
	}
	return "Fine Grain"
}

// Temporal is the temporal resolution of an attack.
type Temporal int

// Temporal resolutions.
const (
	NoResolution Temporal = iota // the coarse-grain column has no split
	LowResolution
	HighResolution // medium/high in the paper's heading
)

// String returns the label used in Table 1.
func (t Temporal) String() string {
	switch t {
	case LowResolution:
		return "Low Resolution"
	case HighResolution:
		return "Medium/High Resolution"
	}
	return "—"
}

// Attack is one row entry of the taxonomy.
type Attack struct {
	Name     string
	Citation string
	Spatial  Spatial
	Temporal Temporal
	Noisy    bool
}

// Table1 returns the paper's Table 1 registry.
func Table1() []Attack {
	return []Attack{
		{"Controlled side-channel", "[60]", CoarseGrain, NoResolution, false},
		{"Sneaky Page Monitoring", "[58]", CoarseGrain, NoResolution, false},
		{"TLBleed", "[20]", CoarseGrain, NoResolution, true},
		{"TLB contention", "[25]", CoarseGrain, NoResolution, true},
		{"DRAMA", "[46]", CoarseGrain, NoResolution, true},
		{"MicroScope (this work)", "", FineGrain, HighResolution, false},
		{"SGX Prime+Probe", "[18]", FineGrain, LowResolution, true},
		{"Software Grand Exposure", "[9]", FineGrain, LowResolution, true},
		{"CacheBleed", "[64]", FineGrain, LowResolution, true},
		{"MemJam", "[39]", FineGrain, LowResolution, true},
		{"PortSmash", "[5]", FineGrain, LowResolution, true},
		{"FPU subnormal attack", "[7]", FineGrain, LowResolution, true},
		{"Execution unit contention", "[3, 59]", FineGrain, LowResolution, true},
		{"BTB contention", "[1, 2]", FineGrain, LowResolution, true},
		{"BTB collision", "[16]", FineGrain, LowResolution, true},
		{"Leaky Cauldron", "[58]", FineGrain, LowResolution, true},
		{"Cache Games", "[22]", FineGrain, HighResolution, true},
		{"CacheZoom", "[40]", FineGrain, HighResolution, true},
		{"Hahnel et al.", "[23]", FineGrain, HighResolution, true},
		{"SGX-Step", "[57]", FineGrain, HighResolution, true},
	}
}

// UniqueCell reports whether the (spatial, temporal, noise) cell contains
// exactly one attack in the registry — the paper's claim is that
// MicroScope alone achieves fine-grain, high-resolution, no-noise.
func UniqueCell(attacks []Attack, s Spatial, tm Temporal, noisy bool) (Attack, bool) {
	var found []Attack
	for _, a := range attacks {
		if a.Spatial == s && a.Temporal == tm && a.Noisy == noisy {
			found = append(found, a)
		}
	}
	if len(found) == 1 {
		return found[0], true
	}
	return Attack{}, false
}

// FormatTable1 renders the taxonomy grouped as in the paper.
func FormatTable1(attacks []Attack) string {
	type cell struct {
		spatial Spatial
		temp    Temporal
		noisy   bool
	}
	groups := map[cell][]string{}
	for _, a := range attacks {
		c := cell{a.Spatial, a.Temporal, a.Noisy}
		label := a.Name
		if a.Citation != "" {
			label += " " + a.Citation
		}
		groups[c] = append(groups[c], label)
	}
	keys := make([]cell, 0, len(groups))
	for c := range groups {
		keys = append(keys, c)
	}
	sort.Slice(keys, func(i, j int) bool {
		a, b := keys[i], keys[j]
		if a.noisy != b.noisy {
			return !a.noisy
		}
		if a.spatial != b.spatial {
			return a.spatial < b.spatial
		}
		return a.temp < b.temp
	})
	var sb strings.Builder
	sb.WriteString("Table 1: Characterization of side channel attacks on Intel SGX\n\n")
	for _, c := range keys {
		noise := "No Noise"
		if c.noisy {
			noise = "With Noise"
		}
		fmt.Fprintf(&sb, "%s | %s | %s:\n", noise, c.spatial, c.temp)
		for _, name := range groups[c] {
			fmt.Fprintf(&sb, "    %s\n", name)
		}
	}
	return sb.String()
}
