package pipetrace

import (
	"strings"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

func TestCollectorLifecycle(t *testing.T) {
	phys := mem.NewPhysMem(16 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	core.Context(0).SetAddressSpace(as)
	col := NewCollector(0)
	core.SetTracer(col)

	prog := isa.NewBuilder().
		MovImm(isa.R1, 5).
		AddImm(isa.R2, isa.R1, 3).
		Halt().MustBuild()
	core.Context(0).SetProgram(prog, 0)
	core.Run(10_000)
	col.Finalize()

	lives := col.Lives()
	if len(lives) != 3 {
		t.Fatalf("lives = %d, want 3", len(lives))
	}
	for i, l := range lives {
		if l.Fetch == 0 || l.Issue == 0 || l.Complete == 0 || l.Retire == 0 {
			t.Errorf("life %d has missing stages: %+v", i, l)
		}
		if l.Fetch > l.Issue || l.Issue > l.Complete || l.Complete > l.Retire {
			t.Errorf("life %d stages out of order: %+v", i, l)
		}
		if l.Squashed || l.Faulted {
			t.Errorf("life %d marked %+v", i, l)
		}
	}
	retired, squashed, faulted := Summary(lives)
	if retired != 3 || squashed != 0 || faulted != 0 {
		t.Errorf("summary = %d/%d/%d", retired, squashed, faulted)
	}
}

func TestCollectorMarksSquashAndFault(t *testing.T) {
	phys := mem.NewPhysMem(16 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	core.Context(0).SetAddressSpace(as)
	va := mem.Addr(0x40_0000)
	if _, err := as.MapNew(va, mem.FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, err := as.SetPresent(va, false); err != nil {
		t.Fatal(err)
	}
	core.SetFaultHandler(cpu.FaultHandlerFunc(func(f cpu.PageFault) cpu.FaultOutcome {
		return cpu.FaultOutcome{Terminate: true}
	}))
	col := NewCollector(0)
	core.SetTracer(col)

	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(va)).
		Load(isa.R2, isa.R1, 0). // faults
		MovImm(isa.R3, 9).       // speculatively executed, squashed
		Halt().MustBuild()
	core.Context(0).SetProgram(prog, 0)
	core.Run(1_000_000)
	col.Finalize()

	_, squashed, faulted := Summary(col.Lives())
	if faulted != 1 {
		t.Errorf("faulted = %d, want 1", faulted)
	}
	if squashed == 0 {
		t.Error("no squashed lives recorded")
	}

	out := Render(col.Lives())
	if !strings.Contains(out, "FAULT") || !strings.Contains(out, "squashed") {
		t.Errorf("render missing fates:\n%s", out)
	}
}

func TestWindowsSplitAtFaults(t *testing.T) {
	c := NewCollector(0)
	mk := func(pc int, kinds ...cpu.EventKind) {
		for i, k := range kinds {
			c.Trace(cpu.Event{Cycle: uint64(10*pc + i + 1), Context: 0, Kind: k, PC: pc})
		}
	}
	mk(0, cpu.EvFetch, cpu.EvIssue, cpu.EvComplete, cpu.EvRetire)
	mk(1, cpu.EvFetch, cpu.EvIssue, cpu.EvComplete, cpu.EvFault)
	mk(2, cpu.EvFetch) // speculative, open
	mk(1, cpu.EvFetch, cpu.EvIssue, cpu.EvComplete, cpu.EvRetire)
	c.Finalize()

	w := c.Windows(0)
	if len(w) != 2 {
		t.Fatalf("windows = %d, want 2", len(w))
	}
	if len(w[0]) != 2 || !w[0][1].Faulted {
		t.Errorf("window 0 = %+v", w[0])
	}
	if len(w[1]) != 2 {
		t.Errorf("window 1 = %+v", w[1])
	}
	if !w[1][0].Squashed {
		t.Error("speculative life not squashed by Finalize")
	}
}

func TestSquashEventKillsYoungerLives(t *testing.T) {
	// A mispredict-style EvSquash names the surviving instruction's Seq;
	// strictly younger in-flight lives die at event time, without
	// Finalize.
	c := NewCollector(0)
	c.Trace(cpu.Event{Cycle: 1, Kind: cpu.EvFetch, PC: 0, Seq: 1})
	c.Trace(cpu.Event{Cycle: 2, Kind: cpu.EvFetch, PC: 1, Seq: 2})
	c.Trace(cpu.Event{Cycle: 3, Kind: cpu.EvFetch, PC: 2, Seq: 3})
	c.Trace(cpu.Event{Cycle: 4, Kind: cpu.EvSquash, PC: 0, Seq: 1})

	lives := c.Lives()
	if lives[0].Squashed {
		t.Errorf("squashing instruction (seq 1) must survive: %+v", lives[0])
	}
	if !lives[1].Squashed || !lives[2].Squashed {
		t.Errorf("younger lives not squashed at event time: %+v %+v", lives[1], lives[2])
	}

	// The survivor can still retire afterwards.
	c.Trace(cpu.Event{Cycle: 5, Kind: cpu.EvRetire, PC: 0})
	if got := c.Lives()[0]; got.Retire != 5 || got.Squashed {
		t.Errorf("survivor did not retire cleanly: %+v", got)
	}
}

func TestSeqZeroSquashFlushesContext(t *testing.T) {
	// A preempt squash carries no Seq: the whole context flushes. Other
	// contexts are untouched.
	c := NewCollector(0)
	c.Trace(cpu.Event{Cycle: 1, Context: 0, Kind: cpu.EvFetch, PC: 0, Seq: 1})
	c.Trace(cpu.Event{Cycle: 2, Context: 0, Kind: cpu.EvFetch, PC: 1, Seq: 2})
	c.Trace(cpu.Event{Cycle: 3, Context: 1, Kind: cpu.EvFetch, PC: 0, Seq: 3})
	c.Trace(cpu.Event{Cycle: 4, Context: 0, Kind: cpu.EvSquash, PC: 1, Detail: "preempt"})

	lives := c.Lives()
	if !lives[0].Squashed || !lives[1].Squashed {
		t.Errorf("context 0 not flushed: %+v %+v", lives[0], lives[1])
	}
	if lives[2].Squashed {
		t.Errorf("context 1 flushed by context 0's preempt: %+v", lives[2])
	}
}

func TestTxAbortFlushesContext(t *testing.T) {
	c := NewCollector(0)
	c.Trace(cpu.Event{Cycle: 1, Kind: cpu.EvFetch, PC: 0, Seq: 1})
	c.Trace(cpu.Event{Cycle: 2, Kind: cpu.EvFetch, PC: 1, Seq: 2})
	c.Trace(cpu.Event{Cycle: 3, Kind: cpu.EvTxAbort, PC: 1, Detail: "conflict"})

	for i, l := range c.Lives() {
		if !l.Squashed {
			t.Errorf("life %d survived tx abort: %+v", i, l)
		}
	}
}

func TestFaultFlushesRemainingInFlight(t *testing.T) {
	// The core flushes the pipeline before delivering a fault: the
	// faulting life closes Faulted, everything else in flight dies
	// squashed at fault time (not only at Finalize).
	c := NewCollector(0)
	c.Trace(cpu.Event{Cycle: 1, Kind: cpu.EvFetch, PC: 0, Seq: 1})
	c.Trace(cpu.Event{Cycle: 2, Kind: cpu.EvFetch, PC: 1, Seq: 2})
	c.Trace(cpu.Event{Cycle: 3, Kind: cpu.EvFault, PC: 0, Seq: 1})

	lives := c.Lives()
	if !lives[0].Faulted || lives[0].Squashed {
		t.Errorf("faulting life wrong fate: %+v", lives[0])
	}
	if !lives[1].Squashed {
		t.Errorf("in-flight life not squashed by fault: %+v", lives[1])
	}
}

func TestCollectorLimit(t *testing.T) {
	c := NewCollector(2)
	for pc := 0; pc < 5; pc++ {
		c.Trace(cpu.Event{Kind: cpu.EvFetch, PC: pc, Cycle: uint64(pc + 1)})
	}
	if len(c.Lives()) != 2 {
		t.Errorf("limit not enforced: %d lives", len(c.Lives()))
	}
}

func TestReplayWindowsShowReexecution(t *testing.T) {
	// Against a replaying handler, the same PC must appear in several
	// windows: fetched+issued each time, squashed in all but the last.
	phys := mem.NewPhysMem(16 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	as, err := mem.NewAddressSpace(phys, 1)
	if err != nil {
		t.Fatal(err)
	}
	core.Context(0).SetAddressSpace(as)
	handle := mem.Addr(0x40_0000)
	if _, err := as.MapNew(handle, mem.FlagUser); err != nil {
		t.Fatal(err)
	}
	if _, err := as.SetPresent(handle, false); err != nil {
		t.Fatal(err)
	}
	faults := 0
	core.SetFaultHandler(cpu.FaultHandlerFunc(func(f cpu.PageFault) cpu.FaultOutcome {
		faults++
		if faults >= 3 {
			if _, err := as.SetPresent(handle, true); err != nil {
				panic(err)
			}
		}
		return cpu.FaultOutcome{HandlerLatency: 50}
	}))
	col := NewCollector(0)
	core.SetTracer(col)
	prog := isa.NewBuilder().
		MovImm(isa.R1, int64(handle)).
		Load(isa.R2, isa.R1, 0).
		MovImm(isa.R3, 7). // the replayed transmit stand-in
		Halt().MustBuild()
	core.Context(0).SetProgram(prog, 0)
	core.Run(1_000_000)
	col.Finalize()

	// pc=2 (movi r3) must have several lives: squashed ones per replay
	// plus one retired.
	var squashed, retired int
	for _, l := range col.Lives() {
		if l.PC != 2 {
			continue
		}
		switch {
		case l.Squashed:
			squashed++
		case l.Retire != 0:
			retired++
		}
	}
	if squashed < 2 || retired != 1 {
		t.Errorf("pc=2 lives: %d squashed, %d retired; want >=2 and 1", squashed, retired)
	}
}
