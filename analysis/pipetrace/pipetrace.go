// Package pipetrace collects sim/cpu pipeline events into per-instruction
// lifecycles and renders them as text — the instruction-level view of the
// paper's Figure 3 timeline. It makes replay windows visible: each
// replayed instruction appears once per window, fetched and issued but
// squashed instead of retired, until the final window where it retires.
package pipetrace

import (
	"fmt"
	"strings"

	"microscope/sim/cpu"
)

// Life is one dynamic instruction's trip through the pipeline. Zero cycle
// values mean the stage was never reached. Seq is the core's global
// dispatch sequence number (zero until the instruction dispatches), used
// to decide which lives a squash event kills.
type Life struct {
	Context  int
	PC       int
	Seq      uint64
	Instr    string
	Fetch    uint64
	Issue    uint64
	Complete uint64
	Retire   uint64
	Squashed bool
	Faulted  bool
}

// Collector implements cpu.Tracer.
type Collector struct {
	lives []Life
	// open maps (context, pc) to indices of lives not yet terminated.
	open map[[2]int][]int
	// Limit stops collection after this many lives (0 = unlimited).
	Limit int
}

// NewCollector returns an empty collector.
func NewCollector(limit int) *Collector {
	return &Collector{open: make(map[[2]int][]int), Limit: limit}
}

// Trace implements cpu.Tracer.
func (c *Collector) Trace(ev cpu.Event) {
	key := [2]int{ev.Context, ev.PC}
	switch ev.Kind {
	case cpu.EvFetch:
		if c.Limit > 0 && len(c.lives) >= c.Limit {
			return
		}
		c.lives = append(c.lives, Life{
			Context: ev.Context,
			PC:      ev.PC,
			Seq:     ev.Seq,
			Instr:   ev.Instr.String(),
			Fetch:   ev.Cycle,
		})
		c.open[key] = append(c.open[key], len(c.lives)-1)
	case cpu.EvIssue:
		if i, ok := c.newest(key); ok {
			c.lives[i].Issue = ev.Cycle
		}
	case cpu.EvComplete:
		if i, ok := c.newest(key); ok {
			c.lives[i].Complete = ev.Cycle
		}
	case cpu.EvRetire:
		if i, ok := c.newest(key); ok {
			c.lives[i].Retire = ev.Cycle
			c.close(key, i)
		}
	case cpu.EvFault:
		if i, ok := c.newest(key); ok {
			c.lives[i].Faulted = true
			c.close(key, i)
		}
		// The core flushes the whole context before delivering the
		// fault: every other in-flight life dies squashed.
		c.squashOpen(ev.Context, func(*Life) bool { return true })
	case cpu.EvSquash:
		// One event names the squashing instruction; everything
		// strictly younger dies. Seq 0 is a whole-pipeline flush
		// (preempt).
		if ev.Seq == 0 {
			c.squashOpen(ev.Context, func(*Life) bool { return true })
		} else {
			c.squashOpen(ev.Context, func(l *Life) bool { return l.Seq > ev.Seq })
		}
	case cpu.EvTxAbort:
		// A transaction abort flushes the context without a fault —
		// the TSX replay handle. Lives die squashed at abort time so
		// tx-based replay windows are visible without Finalize.
		c.squashOpen(ev.Context, func(*Life) bool { return true })
	}
}

// squashOpen marks every open life of the context matching keep as
// squashed and closes it. The fate write is order-independent, so the
// map iteration order of c.open is unobservable in the output.
func (c *Collector) squashOpen(context int, match func(*Life) bool) {
	for key, idxs := range c.open {
		if key[0] != context {
			continue
		}
		kept := idxs[:0]
		for _, i := range idxs {
			if match(&c.lives[i]) {
				c.lives[i].Squashed = true
				continue
			}
			kept = append(kept, i)
		}
		if len(kept) == 0 {
			delete(c.open, key)
			continue
		}
		c.open[key] = kept
	}
}

func (c *Collector) newest(key [2]int) (int, bool) {
	s := c.open[key]
	if len(s) == 0 {
		return 0, false
	}
	return s[len(s)-1], true
}

func (c *Collector) close(key [2]int, idx int) {
	s := c.open[key]
	for i := len(s) - 1; i >= 0; i-- {
		if s[i] == idx {
			c.open[key] = append(s[:i], s[i+1:]...)
			return
		}
	}
}

// Finalize marks every still-open life as squashed (called once stepping
// is done; squashes have no per-instruction events).
func (c *Collector) Finalize() {
	for _, idxs := range c.open {
		for _, i := range idxs {
			if c.lives[i].Retire == 0 && !c.lives[i].Faulted {
				c.lives[i].Squashed = true
			}
		}
	}
	c.open = make(map[[2]int][]int)
}

// Lives returns the collected lifecycles in fetch order.
func (c *Collector) Lives() []Life { return append([]Life(nil), c.lives...) }

// Windows groups a context's lives into replay windows: a new window
// starts after each faulted life. (The faulting instruction terminates
// its window.)
func (c *Collector) Windows(context int) [][]Life {
	var out [][]Life
	var cur []Life
	for _, l := range c.lives {
		if l.Context != context {
			continue
		}
		cur = append(cur, l)
		if l.Faulted {
			out = append(out, cur)
			cur = nil
		}
	}
	if len(cur) > 0 {
		out = append(out, cur)
	}
	return out
}

// Render draws lives as a table.
func Render(lives []Life) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "%-4s %-24s %10s %10s %10s %10s  %s\n",
		"pc", "instr", "fetch", "issue", "complete", "retire", "fate")
	for _, l := range lives {
		fate := "retired"
		switch {
		case l.Faulted:
			fate = "FAULT"
		case l.Squashed:
			fate = "squashed"
		case l.Retire == 0:
			fate = "in flight"
		}
		fmt.Fprintf(&sb, "%-4d %-24s %10s %10s %10s %10s  %s\n",
			l.PC, l.Instr, cyc(l.Fetch), cyc(l.Issue), cyc(l.Complete), cyc(l.Retire), fate)
	}
	return sb.String()
}

func cyc(v uint64) string {
	if v == 0 {
		return "-"
	}
	return fmt.Sprintf("%d", v)
}

// Summary reports per-fate counts for a set of lives.
func Summary(lives []Life) (retired, squashed, faulted int) {
	for _, l := range lives {
		switch {
		case l.Faulted:
			faulted++
		case l.Squashed:
			squashed++
		case l.Retire != 0:
			retired++
		}
	}
	return retired, squashed, faulted
}
