package sweep

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"microscope/analysis/stats"
)

// trialOutput is a deliberately rich result type: scalars, slices, and
// derived randomness, so byte-comparison is meaningful.
type trialOutput struct {
	Trial   int
	Samples []uint64
	Sum     uint64
}

func makeTrial(base int64) Trial[trialOutput] {
	return func(trial int) (trialOutput, error) {
		rng := rand.New(rand.NewSource(SeedFor(base, trial)))
		out := trialOutput{Trial: trial}
		for i := 0; i < 64; i++ {
			x := uint64(rng.Intn(100_000))
			out.Samples = append(out.Samples, x)
			out.Sum += x
		}
		return out, nil
	}
}

func encode(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// The headline guarantee: for any worker count, the sweep's output is
// byte-identical to the serial (workers=1) run.
func TestWorkerCountInvariance(t *testing.T) {
	const n = 37
	serial, err := Run(n, Options{Workers: 1}, makeTrial(99))
	if err != nil {
		t.Fatal(err)
	}
	ref := encode(t, serial)
	for _, workers := range []int{2, 3, 8, 64} {
		got, err := Run(n, Options{Workers: workers}, makeTrial(99))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(encode(t, got), ref) {
			t.Errorf("workers=%d: results differ from serial run", workers)
		}
	}
}

func TestRunOrderAndCompleteness(t *testing.T) {
	out, err := Run(100, Options{Workers: 8}, func(trial int) (int, error) {
		return trial * trial, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 100 {
		t.Fatalf("len = %d", len(out))
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d, want %d (results out of order)", i, v, i*i)
		}
	}
}

func TestRunZeroTrials(t *testing.T) {
	out, err := Run(0, Options{}, func(int) (int, error) { return 0, errors.New("never") })
	if err != nil || len(out) != 0 {
		t.Fatalf("zero-trial sweep: %v, %v", out, err)
	}
}

// Error propagation: the reported error is the lowest failing trial's,
// for every worker count, and surviving trials still complete.
func TestErrorPropagation(t *testing.T) {
	boom := errors.New("boom")
	trial := func(i int) (int, error) {
		if i == 7 || i == 13 {
			return 0, fmt.Errorf("trial %d: %w", i, boom)
		}
		return i, nil
	}
	for _, workers := range []int{1, 4, 16} {
		out, err := Run(20, Options{Workers: workers}, trial)
		if err == nil {
			t.Fatalf("workers=%d: no error", workers)
		}
		var te *TrialError
		if !errors.As(err, &te) {
			t.Fatalf("workers=%d: error %T is not *TrialError", workers, err)
		}
		if te.Trial != 7 {
			t.Errorf("workers=%d: reported trial %d, want 7 (lowest failing)", workers, te.Trial)
		}
		if !errors.Is(err, boom) {
			t.Errorf("workers=%d: cause not preserved: %v", workers, err)
		}
		if out[6] != 6 || out[19] != 19 {
			t.Errorf("workers=%d: surviving trials incomplete: %v", workers, out)
		}
		if out[7] != 0 {
			t.Errorf("workers=%d: failed trial slot = %d, want zero value", workers, out[7])
		}
	}
}

func TestWorkersNormalization(t *testing.T) {
	if Workers(0) < 1 || Workers(-5) < 1 {
		t.Error("non-positive worker counts must normalize to >= 1")
	}
	if Workers(3) != 3 {
		t.Error("positive worker counts must pass through")
	}
}

func TestSeedFor(t *testing.T) {
	// Deterministic: the same (base, trial) always yields the same seed.
	if SeedFor(100, 7) != SeedFor(100, 7) {
		t.Error("SeedFor must be deterministic")
	}
	// The old base+trial derivation made adjacent base seeds share
	// per-trial streams (trial t of base b+1 == trial t+1 of base b),
	// correlating sweeps that claim independence. The mixed derivation
	// must keep nearby (base, trial) pairs in unrelated streams: check
	// all pairs drawn from a small neighborhood collide nowhere.
	seen := make(map[int64][2]int64)
	for base := int64(90); base <= 110; base++ {
		for trial := 0; trial < 50; trial++ {
			s := SeedFor(base, trial)
			if prev, dup := seen[s]; dup {
				t.Fatalf("SeedFor(%d,%d) == SeedFor(%d,%d) == %d: overlapping trial streams",
					base, trial, prev[0], prev[1], s)
			}
			seen[s] = [2]int64{base, int64(trial)}
		}
	}
}

// RunSamples must produce the same summary as serially summarizing the
// concatenation, for any worker count.
func TestRunSamplesInvariance(t *testing.T) {
	gen := func(trial int) ([]uint64, error) {
		rng := rand.New(rand.NewSource(SeedFor(5, trial)))
		xs := make([]uint64, 200)
		for i := range xs {
			xs[i] = uint64(rng.Intn(1_000))
		}
		return xs, nil
	}
	var all []uint64
	for i := 0; i < 10; i++ {
		xs, _ := gen(i)
		all = append(all, xs...)
	}
	want := stats.Summarize(all)
	for _, workers := range []int{1, 4} {
		acc, err := RunSamples(10, Options{Workers: workers}, gen)
		if err != nil {
			t.Fatal(err)
		}
		got := acc.Summary()
		if got.N != want.N || got.Min != want.Min || got.Max != want.Max ||
			got.P50 != want.P50 || got.P95 != want.P95 || got.P99 != want.P99 {
			t.Errorf("workers=%d: summary %+v != %+v", workers, got, want)
		}
	}
	if _, err := RunSamples(3, Options{}, func(i int) ([]uint64, error) {
		if i == 1 {
			return nil, errors.New("bad trial")
		}
		return []uint64{1}, nil
	}); err == nil {
		t.Error("RunSamples swallowed a trial error")
	}
}
