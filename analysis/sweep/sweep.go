// Package sweep fans independent simulation trials out over a pool of
// worker goroutines and merges their results deterministically.
//
// Every experiment in this reproduction — the Fig. 10 port-contention
// trials, the Fig. 11 / §6.2 AES extractions, the baseline trace
// collections — is an independent simulation: each trial constructs its
// own Rig/PhysMem/Core, so trials share no mutable state and are safe to
// run concurrently by construction. The runner exploits that: N trials
// are distributed over up to GOMAXPROCS workers, each worker sends a
// typed result over a channel, and the collector slots results by trial
// index. The output is therefore *byte-identical* to a serial run
// regardless of the worker count — parallelism changes wall-clock time,
// never results.
//
// Determinism contract: the trial function must derive all randomness
// from its trial index (e.g. rand.NewSource(SeedFor(seed, trial))) and
// must not touch state outside its own trial. Under that contract,
// Run(n, Options{Workers: w}, f) returns the same values for every w.
// Per-trial seeds must be *mixed*, not merely offset: with seed+trial,
// two sweeps whose base seeds differ by less than the trial count share
// most of their per-trial streams (sweep A's trial 1 is sweep B's
// trial 0), which silently correlates supposedly independent
// experiments. SeedFor finalizes base and trial through splitmix64 so
// adjacent bases and adjacent trials land in unrelated streams.
package sweep

import (
	"fmt"
	"runtime"
	"sync"

	"microscope/analysis/stats"
)

// Trial computes one independent trial of a sweep. It must be safe to
// call concurrently with other trial indices and must derive any
// randomness from the trial index alone (see the package determinism
// contract).
type Trial[T any] func(trial int) (T, error)

// Options configures a sweep.
type Options struct {
	// Workers is the number of concurrent worker goroutines. Values <= 0
	// select runtime.GOMAXPROCS(0). The worker count never affects
	// results, only wall-clock time.
	Workers int
}

// Workers normalizes a worker-count flag: values <= 0 become
// runtime.GOMAXPROCS(0).
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// SeedFor derives the per-trial seed from a sweep's base seed. Giving
// every trial its own seed (rather than sharing one *rand.Rand, which is
// not goroutine-safe) keeps parallel sweeps reproducible: trial i uses
// the same random stream whether it runs first, last, or concurrently.
//
// The derivation is a splitmix64-style finalizer over (base, trial)
// rather than base+trial: the naive offset made trial t of base b reuse
// the exact stream of trial t+1 of base b-1, so sweeps with nearby base
// seeds were mostly permutations of each other instead of independent
// experiments.
func SeedFor(base int64, trial int) int64 {
	x := uint64(base) + uint64(trial)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int64(x)
}

// TrialError reports which trial of a sweep failed.
type TrialError struct {
	Trial int
	Err   error
}

// Error implements error.
func (e *TrialError) Error() string {
	return fmt.Sprintf("sweep: trial %d: %v", e.Trial, e.Err)
}

// Unwrap returns the underlying trial error.
func (e *TrialError) Unwrap() error { return e.Err }

// result is the typed message a worker sends back to the collector.
type result[T any] struct {
	index int
	value T
	err   error
}

// Run executes n independent trials of fn over a worker pool and returns
// the results ordered by trial index.
//
// All n trials run to completion even when some fail; if any trial
// returned an error, Run reports the error of the *lowest-numbered*
// failing trial (wrapped in a *TrialError) so the error, like the
// values, is independent of worker scheduling. The returned slice always
// has length n; entries whose trial failed hold the zero value of T.
func Run[T any](n int, opt Options, fn Trial[T]) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, nil
	}
	workers := Workers(opt.Workers)
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	if workers == 1 {
		// Serial fast path: no goroutines, same semantics.
		for i := 0; i < n; i++ {
			out[i], errs[i] = fn(i)
		}
		return out, firstError(errs)
	}

	indices := make(chan int)
	results := make(chan result[T])
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range indices {
				v, err := fn(i)
				results <- result[T]{index: i, value: v, err: err}
			}
		}()
	}
	go func() {
		for i := 0; i < n; i++ {
			indices <- i
		}
		close(indices)
		wg.Wait()
		close(results)
	}()
	// Collect: each result lands in its own slot, so the assembled slice
	// is already in trial order no matter which worker finished when.
	for r := range results {
		out[r.index] = r.value
		errs[r.index] = r.err
	}
	return out, firstError(errs)
}

// firstError returns the lowest-index error as a *TrialError.
func firstError(errs []error) error {
	for i, err := range errs {
		if err != nil {
			return &TrialError{Trial: i, Err: err}
		}
	}
	return nil
}

// RunSamples executes n trials that each produce a batch of latency
// samples and folds the batches into one stats.Accumulator, merging
// per-trial accumulators in trial-index order so the final summary is
// identical for every worker count. Each trial's batch is sorted once by
// its own worker; the fold is a linear merge of sorted runs — no global
// re-sort of all samples.
func RunSamples(n int, opt Options, fn Trial[[]uint64]) (*stats.Accumulator, error) {
	accs, err := Run(n, opt, func(trial int) (*stats.Accumulator, error) {
		xs, err := fn(trial)
		if err != nil {
			return nil, err
		}
		a := stats.NewAccumulator()
		a.AddSamples(xs)
		a.Sort() // pre-sort on the worker, in parallel
		return a, nil
	})
	if err != nil {
		return nil, err
	}
	total := stats.NewAccumulator()
	for _, a := range accs {
		total.Merge(a)
	}
	return total, nil
}
