package main

import (
	"bytes"
	"strings"
	"testing"
)

// The cmd/ tree's flag handling is exercised without mounting the heavy
// attacks: parseArgs is pure argument plumbing.
func TestParseArgsDefaults(t *testing.T) {
	var errw bytes.Buffer
	opt, err := parseArgs(nil, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if string(opt.cfg.Key) != "0123456789abcdef" || !opt.full ||
		opt.keysweep != 0 || opt.workers != 0 {
		t.Errorf("defaults = %+v", opt)
	}
}

func TestParseArgsOverrides(t *testing.T) {
	var errw bytes.Buffer
	opt, err := parseArgs([]string{
		"-key", "fedcba9876543210", "-pt", "sixteen byte msg",
		"-full=false", "-keysweep", "8", "-workers", "4",
	}, &errw)
	if err != nil {
		t.Fatal(err)
	}
	if string(opt.cfg.Key) != "fedcba9876543210" ||
		string(opt.cfg.Plaintext) != "sixteen byte msg" ||
		opt.full || opt.keysweep != 8 || opt.workers != 4 {
		t.Errorf("parsed = %+v", opt)
	}
}

func TestParseArgsRejectsBadInput(t *testing.T) {
	for _, argv := range [][]string{
		{"-nosuchflag"},
		{"-keysweep", "notanumber"},
		{"-keysweep", "-3"},
		{"positional"},
	} {
		var errw bytes.Buffer
		if _, err := parseArgs(argv, &errw); err == nil {
			t.Errorf("argv %v accepted", argv)
		}
	}
}

// Bad flags must exit with a usage error (2) without running the attack.
func TestRunBadFlagsExits2(t *testing.T) {
	var out, errw bytes.Buffer
	if code := run([]string{"-bogus"}, &out, &errw); code != 2 {
		t.Fatalf("exit code = %d, want 2", code)
	}
	if !strings.Contains(errw.String(), "-bogus") {
		t.Errorf("stderr does not name the bad flag: %q", errw.String())
	}
	if out.Len() != 0 {
		t.Errorf("attack output produced despite flag error: %q", out.String())
	}
}

// Smoke: the Fig. 11 path runs end to end through the CLI entry point.
func TestRunFig11Smoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full Fig. 11 simulation")
	}
	var out, errw bytes.Buffer
	if code := run([]string{"-full=false"}, &out, &errw); code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, errw.String())
	}
	if !strings.Contains(out.String(), "primed replays consistent and correct: true") {
		t.Errorf("fig11 output missing consistency line:\n%s", out.String())
	}
}
