// Command aesattack reproduces the paper's AES results: Figure 11 (the
// latency of each Td1 cache line after three replays of one decryption
// round) and the full §6.2 extraction of every T-table access of a single
// AES decryption, in one logical victim run.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/analysis/sidechan"
	"microscope/attack/experiments"
	"microscope/crypto/taes"
)

func main() {
	key := flag.String("key", "0123456789abcdef", "AES key (16/24/32 bytes)")
	pt := flag.String("pt", "attack at dawn!!", "plaintext block (16 bytes)")
	full := flag.Bool("full", true, "also run the full-trace extraction (§6.2)")
	flag.Parse()

	cfg := experiments.DefaultAESConfig()
	cfg.Key = []byte(*key)
	cfg.Plaintext = []byte(*pt)

	fig11, err := experiments.RunFig11(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aesattack:", err)
		os.Exit(1)
	}

	fmt.Println("Figure 11 — latency of accesses to the Td1 table after each replay")
	fmt.Println("(replay 0: unprimed; replays 1-2: cache primed before the replay)")
	bands := sidechan.DefaultCacheBands()
	fmt.Printf("\n%-6s %10s %10s %10s\n", "line", "replay 0", "replay 1", "replay 2")
	for line := 0; line < taes.LinesPerTable; line++ {
		fmt.Printf("%-6d", line)
		for rep := 0; rep < 3; rep++ {
			lat := fig11.Latencies[rep][line]
			_, name := bands.Band(lat)
			fmt.Printf(" %5d %-4s", lat, name)
		}
		fmt.Println()
	}
	fmt.Printf("\nground-truth Td1 lines (round 1): %v\n", experiments.LinesOf(fig11.Truth))
	fmt.Printf("extracted after replay 1:         %v\n", experiments.LinesOf(fig11.Extracted[0]))
	fmt.Printf("extracted after replay 2:         %v\n", experiments.LinesOf(fig11.Extracted[1]))
	fmt.Printf("replay 0 latency bands: %d; primed replays consistent and correct: %t\n",
		fig11.Replay0Bands, fig11.Consistent())

	if !*full {
		return
	}
	fmt.Println("\n§6.2 — full single-run extraction of all T-table accesses")
	ext, err := experiments.RunAESExtraction(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "aesattack:", err)
		os.Exit(1)
	}
	for r := 1; r <= ext.Rounds; r++ {
		if r == ext.Rounds {
			fmt.Printf("round %2d: Td4 lines %v\n", r, experiments.LinesOf(ext.Extracted[r][4]))
			continue
		}
		fmt.Printf("round %2d:", r)
		for t := 0; t < 4; t++ {
			fmt.Printf(" Td%d%v", t, experiments.LinesOf(ext.Extracted[r][t]))
		}
		fmt.Println()
	}
	ok, diff := ext.Match()
	fmt.Printf("\nfaults used: %d; plaintext intact: %t; extraction matches ground truth: %t\n",
		ext.Faults, ext.PlaintextOK, ok)
	if !ok {
		fmt.Println("first mismatch:", diff)
		os.Exit(1)
	}
}
