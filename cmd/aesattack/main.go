// Command aesattack reproduces the paper's AES results: Figure 11 (the
// latency of each Td1 cache line after three replays of one decryption
// round) and the full §6.2 extraction of every T-table access of a single
// AES decryption, in one logical victim run.
//
// With -keysweep N the tool additionally mounts N independent full
// extractions (one per deterministic trial plaintext) as a parallel
// sweep and recovers the high nibble of all 16 first-round key bytes by
// candidate elimination. -workers bounds the sweep goroutines; any
// worker count produces identical output.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"microscope/analysis/sidechan"
	"microscope/attack/experiments"
	"microscope/crypto/taes"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// options holds the parsed command line (separated from flag plumbing so
// tests can exercise the parsing without running the attack).
type options struct {
	cfg      experiments.AESConfig
	full     bool
	keysweep int
	workers  int
}

// parseArgs parses argv into options. It returns flag.ErrHelp for -h.
func parseArgs(argv []string, errw io.Writer) (*options, error) {
	fs := flag.NewFlagSet("aesattack", flag.ContinueOnError)
	fs.SetOutput(errw)
	opt := &options{cfg: experiments.DefaultAESConfig()}
	key := fs.String("key", string(opt.cfg.Key), "AES key (16/24/32 bytes)")
	pt := fs.String("pt", string(opt.cfg.Plaintext), "plaintext block (16 bytes)")
	fs.BoolVar(&opt.full, "full", true, "also run the full-trace extraction (§6.2)")
	fs.IntVar(&opt.keysweep, "keysweep", 0,
		"trials of the parallel first-round key-byte recovery sweep (0 = off)")
	fs.IntVar(&opt.workers, "workers", 0,
		"parallel sweep workers (<=0: GOMAXPROCS); results are identical for any value")
	if err := fs.Parse(argv); err != nil {
		return nil, err
	}
	if fs.NArg() > 0 {
		return nil, fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if opt.keysweep < 0 {
		return nil, fmt.Errorf("-keysweep must be >= 0, got %d", opt.keysweep)
	}
	opt.cfg.Key = []byte(*key)
	opt.cfg.Plaintext = []byte(*pt)
	return opt, nil
}

func run(argv []string, out, errw io.Writer) int {
	opt, err := parseArgs(argv, errw)
	if err == flag.ErrHelp {
		return 2
	}
	if err != nil {
		fmt.Fprintln(errw, "aesattack:", err)
		return 2
	}

	fig11, err := experiments.RunFig11(opt.cfg)
	if err != nil {
		fmt.Fprintln(errw, "aesattack:", err)
		return 1
	}

	fmt.Fprintln(out, "Figure 11 — latency of accesses to the Td1 table after each replay")
	fmt.Fprintln(out, "(replay 0: unprimed; replays 1-2: cache primed before the replay)")
	bands := sidechan.DefaultCacheBands()
	fmt.Fprintf(out, "\n%-6s %10s %10s %10s\n", "line", "replay 0", "replay 1", "replay 2")
	for line := 0; line < taes.LinesPerTable; line++ {
		fmt.Fprintf(out, "%-6d", line)
		for rep := 0; rep < 3; rep++ {
			lat := fig11.Latencies[rep][line]
			_, name := bands.Band(lat)
			fmt.Fprintf(out, " %5d %-4s", lat, name)
		}
		fmt.Fprintln(out)
	}
	fmt.Fprintf(out, "\nground-truth Td1 lines (round 1): %v\n", experiments.LinesOf(fig11.Truth))
	fmt.Fprintf(out, "extracted after replay 1:         %v\n", experiments.LinesOf(fig11.Extracted[0]))
	fmt.Fprintf(out, "extracted after replay 2:         %v\n", experiments.LinesOf(fig11.Extracted[1]))
	fmt.Fprintf(out, "replay 0 latency bands: %d; primed replays consistent and correct: %t\n",
		fig11.Replay0Bands, fig11.Consistent())

	if opt.full {
		if code := runFull(opt, out, errw); code != 0 {
			return code
		}
	}
	if opt.keysweep > 0 {
		if code := runKeySweep(opt, out, errw); code != 0 {
			return code
		}
	}
	return 0
}

func runFull(opt *options, out, errw io.Writer) int {
	fmt.Fprintln(out, "\n§6.2 — full single-run extraction of all T-table accesses")
	ext, err := experiments.RunAESExtraction(opt.cfg)
	if err != nil {
		fmt.Fprintln(errw, "aesattack:", err)
		return 1
	}
	for r := 1; r <= ext.Rounds; r++ {
		if r == ext.Rounds {
			fmt.Fprintf(out, "round %2d: Td4 lines %v\n", r, experiments.LinesOf(ext.Extracted[r][4]))
			continue
		}
		fmt.Fprintf(out, "round %2d:", r)
		for t := 0; t < 4; t++ {
			fmt.Fprintf(out, " Td%d%v", t, experiments.LinesOf(ext.Extracted[r][t]))
		}
		fmt.Fprintln(out)
	}
	ok, diff := ext.Match()
	fmt.Fprintf(out, "\nfaults used: %d; plaintext intact: %t; extraction matches ground truth: %t\n",
		ext.Faults, ext.PlaintextOK, ok)
	if !ok {
		fmt.Fprintln(out, "first mismatch:", diff)
		return 1
	}
	return 0
}

func runKeySweep(opt *options, out, errw io.Writer) int {
	fmt.Fprintf(out, "\nkey-byte sweep — %d parallel extractions (workers=%d)\n",
		opt.keysweep, opt.workers)
	ks, err := experiments.RunAESKeyByteSweep(opt.cfg, opt.keysweep, opt.workers)
	if err != nil {
		fmt.Fprintln(errw, "aesattack:", err)
		return 1
	}
	fmt.Fprintln(out, "recovered high nibbles of the 16 first-round (dec) key bytes:")
	for b := 0; b < 16; b++ {
		got := "??"
		if ks.RecoveredHi[b] >= 0 {
			got = fmt.Sprintf(" %x", ks.RecoveredHi[b])
		}
		fmt.Fprintf(out, "byte %2d: recovered=%s truth=%x candidates=%016b\n",
			b, got, ks.TruthHi[b], ks.Candidates[b])
	}
	fmt.Fprintf(out, "recovered %d/16 key-byte nibbles exactly; faults used: %d\n",
		ks.RecoveredExactly(), ks.Faults)
	if !ks.Complete() {
		fmt.Fprintln(out, "(increase -keysweep trials to eliminate the remaining candidates)")
	}
	return 0
}
