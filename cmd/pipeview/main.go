// Command pipeview renders the instruction-level anatomy of a replay
// attack: for each replay window, which victim instructions were fetched,
// issued and executed speculatively — and then squashed — before the
// replay handle's fault was delivered. It is the paper's Figure 3 at
// per-instruction resolution.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/analysis/pipetrace"
	"microscope/attack/experiments"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/trace"
)

func main() {
	replays := flag.Int("replays", 3, "replay windows to show")
	secret := flag.Bool("secret", true, "victim branch secret (div vs mul side)")
	traceOut := flag.String("trace", "",
		"also write a Chrome Trace Event JSON of the run to this file (Perfetto-loadable)")
	metrics := flag.Bool("metrics", false,
		"print deterministic aggregate pipeline metrics after the windows")
	flag.Parse()

	if err := run(*replays, *secret, *traceOut, *metrics); err != nil {
		fmt.Fprintln(os.Stderr, "pipeview:", err)
		os.Exit(1)
	}
}

func run(replays int, secret bool, traceOut string, metrics bool) error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := rig.InstallVictim(vic); err != nil {
		return err
	}
	col := pipetrace.NewCollector(4096)
	var chromeCol *trace.Collector
	var met *trace.Metrics
	sinks := []cpu.Tracer{col}
	if traceOut != "" {
		chromeCol = trace.NewCollector(0)
		sinks = append(sinks, chromeCol)
	}
	if metrics {
		met = trace.NewMetrics()
		met.ROBSize = cpu.DefaultConfig().ROBSize
		sinks = append(sinks, met)
	}
	rig.Core.SetTracer(trace.Tee(sinks...))

	rec := &microscope.Recipe{
		Name:       "pipeview",
		Victim:     rig.Victim,
		Handle:     vic.Sym("handle"),
		MaxReplays: replays,
	}
	if err := rig.Module.Install(rec); err != nil {
		return err
	}
	vic.Start(rig.Kernel, 0)
	if err := rig.Run(50_000_000); err != nil {
		return err
	}
	col.Finalize()

	windows := col.Windows(0)
	fmt.Printf("victim: control-flow secret (%s side); %d replay windows\n\n",
		map[bool]string{true: "div", false: "mul"}[secret], len(windows))
	for i, w := range windows {
		retired, squashed, faulted := pipetrace.Summary(w)
		fmt.Printf("--- window %d: %d retired, %d squashed, %d faulted ---\n",
			i, retired, squashed, faulted)
		fmt.Print(pipetrace.Render(w))
		fmt.Println()
	}
	if chromeCol != nil {
		f, err := os.Create(traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, chromeCol, rig.Module.TraceAnnotations()); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", traceOut)
	}
	if met != nil {
		fmt.Println("-- pipeline metrics --")
		fmt.Print(met.Text())
	}
	return nil
}
