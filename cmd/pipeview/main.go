// Command pipeview renders the instruction-level anatomy of a replay
// attack: for each replay window, which victim instructions were fetched,
// issued and executed speculatively — and then squashed — before the
// replay handle's fault was delivered. It is the paper's Figure 3 at
// per-instruction resolution.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/analysis/pipetrace"
	"microscope/attack/experiments"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cpu"
)

func main() {
	replays := flag.Int("replays", 3, "replay windows to show")
	secret := flag.Bool("secret", true, "victim branch secret (div vs mul side)")
	flag.Parse()

	if err := run(*replays, *secret); err != nil {
		fmt.Fprintln(os.Stderr, "pipeview:", err)
		os.Exit(1)
	}
}

func run(replays int, secret bool) error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	vic := victim.ControlFlowSecret(secret)
	if err := rig.InstallVictim(vic); err != nil {
		return err
	}
	col := pipetrace.NewCollector(4096)
	rig.Core.SetTracer(col)

	rec := &microscope.Recipe{
		Name:       "pipeview",
		Victim:     rig.Victim,
		Handle:     vic.Sym("handle"),
		MaxReplays: replays,
	}
	if err := rig.Module.Install(rec); err != nil {
		return err
	}
	vic.Start(rig.Kernel, 0)
	if err := rig.Run(50_000_000); err != nil {
		return err
	}
	col.Finalize()

	windows := col.Windows(0)
	fmt.Printf("victim: control-flow secret (%s side); %d replay windows\n\n",
		map[bool]string{true: "div", false: "mul"}[secret], len(windows))
	for i, w := range windows {
		retired, squashed, faulted := pipetrace.Summary(w)
		fmt.Printf("--- window %d: %d retired, %d squashed, %d faulted ---\n",
			i, retired, squashed, faulted)
		fmt.Print(pipetrace.Render(w))
		fmt.Println()
	}
	return nil
}
