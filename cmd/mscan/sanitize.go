package main

// The -sanitize mode: run the victim under the MicroScope module with
// the SpecSan shadow-taint sanitizer (sim/sanitizer) attached, and
// report the dynamic transmit findings reconciled finding-by-finding
// against the static scan — the dynamic two thirds of the three-way
// cross-validation (the abstract third is -prove).

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"microscope/attack/experiments"
	"microscope/sim/sanitizer"
)

// sanitizeOutput is the JSON document of one -sanitize run.
type sanitizeOutput struct {
	Target  string `json:"target"`
	Replays int    `json:"replays"`
	Windows int    `json:"windows"`
	// Findings are the sanitizer's dynamic findings; Static the scanner's
	// handle-scoped findings the reconciliation matched them against.
	Findings       []sanitizer.Finding       `json:"findings"`
	Reconciliation *sanitizer.Reconciliation `json:"reconciliation"`
	Counts         map[string]int            `json:"counts"`
}

// runSanitize executes one sanitized replay run against a builtin
// victim. Exit codes under -fail mirror the scanner: transient dynamic
// findings exit 1 (a leak was observed in a replay shadow), and any
// unexplained static/dynamic disagreement exits 2 (the cross-validation
// itself is broken — neither analysis can be trusted until reconciled).
func runSanitize(o options, out io.Writer) (int, error) {
	if o.victim == "" {
		return exitUsage, fmt.Errorf("-sanitize requires -victim (one of: %s); for -asm input use -prove",
			strings.Join(victimNames(), ", "))
	}
	tgt, err := experiments.FindSanTarget(o.victim)
	if err != nil {
		return exitUsage, err
	}
	cfg := experiments.DefaultSpecSanConfig()
	if o.rob > 0 {
		cfg.Static.ROBWindow = o.rob
	}
	cfg.Static.TaintRdrand = !o.noRdrand
	if o.handle != "" {
		tgt.Handle = o.handle
	}
	res, err := experiments.RunSpecSan(tgt, cfg)
	if err != nil {
		return exitUsage, err
	}

	doc := &sanitizeOutput{
		Target:         res.Target,
		Replays:        res.Replays,
		Windows:        len(res.Windows),
		Findings:       res.Findings,
		Reconciliation: res.Reconciliation,
		Counts:         res.Reconciliation.Counts(),
	}
	if o.json {
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return exitUsage, err
		}
		fmt.Fprintf(out, "%s\n", enc)
	} else {
		renderSanitize(out, doc)
	}

	if o.fail {
		if len(res.Reconciliation.Unexplained()) > 0 {
			return exitUnknown, nil
		}
		for _, f := range res.Findings {
			if f.Transient > 0 {
				return exitLeaky, nil
			}
		}
	}
	return exitOK, nil
}

// renderSanitize writes the human-readable sanitizer report.
func renderSanitize(out io.Writer, doc *sanitizeOutput) {
	fmt.Fprintf(out, "program %s: %d replay(s) over %d window(s)\n", doc.Target, doc.Replays, doc.Windows)
	if len(doc.Findings) == 0 {
		fmt.Fprintf(out, "  no dynamic transmit events: no tainted data reached an observable channel\n")
	} else {
		fmt.Fprintf(out, "  %d dynamic finding(s):\n", len(doc.Findings))
		for _, f := range doc.Findings {
			flow := "explicit"
			if f.Implicit {
				flow = "implicit"
			}
			fmt.Fprintf(out, "    @%-4d %-24s %-15s %-9s transient %d/%d, %d replay window(s)\n",
				f.PC, f.Instr, f.Channel, flow, f.Transient, f.Count, f.Replays)
		}
	}
	fmt.Fprintf(out, "  reconciliation vs static scan:\n")
	for _, e := range doc.Reconciliation.Entries {
		fmt.Fprintf(out, "    @%-4d %-24s %-19s %s\n", e.PC, e.Instr, e.Class, e.Detail)
	}
	var keys []string
	for k := range doc.Counts {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var parts []string
	for _, k := range keys {
		parts = append(parts, fmt.Sprintf("%s=%d", k, doc.Counts[k]))
	}
	fmt.Fprintf(out, "  summary: %s\n", strings.Join(parts, " "))
	if un := doc.Reconciliation.Unexplained(); len(un) > 0 {
		fmt.Fprintf(out, "  %d UNEXPLAINED disagreement(s): cross-validation gate FAILS\n", len(un))
	}
}
