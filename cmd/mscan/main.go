// Command mscan statically triages a victim program for MicroScope
// replay vulnerabilities, without running a simulation. It builds the
// program's CFG, runs taint dataflow from the declared secrets, and
// reports every instruction that sits in the squash shadow of a replay
// handle with a secret-dependent resource footprint, labelled by leak
// channel (cache-set, port, latency, random-replay).
//
// Scan a built-in victim:
//
//	mscan -victim aes
//	mscan -victim modexp -json
//
// Scan an assembly file, declaring the secrets by hand:
//
//	mscan -asm prog.s -secret-mem 0x41000000:0x41001000 -secret-reg r5
//
// Exit status: 0 on a clean program, 1 when findings exist and -fail is
// set, 2 on usage or input errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"microscope/analysis/static"
	"microscope/attack/victim"
	"microscope/sim/isa"
)

var (
	victimName = flag.String("victim", "", "scan a built-in victim: "+strings.Join(victimNames(), ", "))
	asmPath    = flag.String("asm", "", "scan an assembly file (see sim/isa syntax)")
	robWindow  = flag.Int("rob", 0, "squash-shadow depth in instructions (0: default core ROB size)")
	jsonOut    = flag.Bool("json", false, "emit the report as JSON")
	failOnHit  = flag.Bool("fail", false, "exit non-zero when findings exist (for CI use)")
	secretRegs = flag.String("secret-reg", "", "comma-separated secret registers for -asm input (e.g. r5,r7)")
	secretMems = flag.String("secret-mem", "", "comma-separated secret ranges lo:hi for -asm input (hex accepted)")
	noRdrand   = flag.Bool("no-rdrand-taint", false, "do not treat RDRAND results as secrets")
)

// builtin describes one -victim target: a constructor returning the
// layout whose program and secret declaration are scanned.
type builtin struct {
	name  string
	build func() (*victim.Layout, error)
}

func builtins() []builtin {
	return []builtin{
		{"aes", func() (*victim.Layout, error) {
			v, err := victim.NewAESVictim([]byte("0123456789abcdef"), []byte("fedcba9876543210"))
			if err != nil {
				return nil, err
			}
			return v.Layout, nil
		}},
		{"modexp", func() (*victim.Layout, error) {
			v, err := victim.NewModExpVictim(5, 0xb, 97, 4)
			if err != nil {
				return nil, err
			}
			return v.Layout, nil
		}},
		{"singlesecret", func() (*victim.Layout, error) {
			return victim.SingleSecret(3, true), nil
		}},
		{"controlflow", func() (*victim.Layout, error) {
			return victim.ControlFlowSecret(true), nil
		}},
		{"loopsecret", func() (*victim.Layout, error) {
			return victim.LoopSecret([]byte{3, 1, 4, 1, 5}), nil
		}},
		{"rdrand", func() (*victim.Layout, error) {
			return victim.RdrandBias(), nil
		}},
	}
}

func victimNames() []string {
	var names []string
	for _, b := range builtins() {
		names = append(names, b.name)
	}
	sort.Strings(names)
	return names
}

func main() {
	flag.Parse()
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "mscan:", err)
		os.Exit(2)
	}
}

func run() error {
	var (
		name string
		prog *isa.Program
		sec  static.Secrets
	)
	switch {
	case *victimName != "" && *asmPath != "":
		return fmt.Errorf("-victim and -asm are mutually exclusive")
	case *victimName != "":
		l, err := buildVictim(*victimName)
		if err != nil {
			return err
		}
		name, prog = l.Name, l.Prog
		sec.Regs = l.SecretRegs
		for _, m := range l.SecretMems() {
			sec.Mems = append(sec.Mems, static.MemRange{Lo: m[0], Hi: m[1]})
		}
	case *asmPath != "":
		src, err := os.ReadFile(*asmPath)
		if err != nil {
			return err
		}
		prog, err = isa.TryAssemble(string(src))
		if err != nil {
			return err
		}
		name = *asmPath
		if sec, err = parseSecrets(*secretRegs, *secretMems); err != nil {
			return err
		}
	default:
		return fmt.Errorf("one of -victim or -asm is required (victims: %s)",
			strings.Join(victimNames(), ", "))
	}

	cfg := static.DefaultConfig()
	if *robWindow > 0 {
		cfg.ROBWindow = *robWindow
	}
	cfg.TaintRdrand = !*noRdrand

	report, err := static.Analyze(name, prog, sec, cfg)
	if err != nil {
		return err
	}
	if *jsonOut {
		out, err := report.JSON()
		if err != nil {
			return err
		}
		fmt.Printf("%s\n", out)
	} else {
		fmt.Print(report.Text())
	}
	if *failOnHit && report.HasFindings() {
		os.Exit(1)
	}
	return nil
}

func buildVictim(name string) (*victim.Layout, error) {
	for _, b := range builtins() {
		if b.name == name {
			return b.build()
		}
	}
	return nil, fmt.Errorf("unknown victim %q (have: %s)", name, strings.Join(victimNames(), ", "))
}

// parseSecrets turns the -secret-reg / -secret-mem flag values into a
// Secrets declaration.
func parseSecrets(regs, mems string) (static.Secrets, error) {
	var sec static.Secrets
	for _, tok := range splitList(regs) {
		r, err := parseReg(tok)
		if err != nil {
			return sec, err
		}
		sec.Regs = append(sec.Regs, r)
	}
	for _, tok := range splitList(mems) {
		lo, hi, ok := strings.Cut(tok, ":")
		if !ok {
			return sec, fmt.Errorf("-secret-mem range %q not of form lo:hi", tok)
		}
		l, err := parseUint(lo)
		if err != nil {
			return sec, fmt.Errorf("-secret-mem %q: %v", tok, err)
		}
		h, err := parseUint(hi)
		if err != nil {
			return sec, fmt.Errorf("-secret-mem %q: %v", tok, err)
		}
		if h <= l {
			return sec, fmt.Errorf("-secret-mem %q: empty range", tok)
		}
		sec.Mems = append(sec.Mems, static.MemRange{Lo: l, Hi: h})
	}
	return sec, nil
}

// parseUint accepts decimal or 0x-prefixed hex.
func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), hexBase(s), 64)
}

func hexBase(s string) int {
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		return 16
	}
	return 10
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func parseReg(tok string) (isa.Reg, error) {
	t := strings.ToLower(tok)
	if len(t) < 2 || (t[0] != 'r' && t[0] != 'f') {
		return isa.NoReg, fmt.Errorf("bad register %q (want r0-r15 or f0-f15)", tok)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n > 15 {
		return isa.NoReg, fmt.Errorf("bad register %q (want r0-r15 or f0-f15)", tok)
	}
	if t[0] == 'f' {
		return isa.F0 + isa.Reg(n), nil
	}
	return isa.R0 + isa.Reg(n), nil
}
