// Command mscan triages a victim program for MicroScope replay
// vulnerabilities. In its default mode it is a static scanner: it builds
// the program's CFG, runs taint dataflow from the declared secrets, and
// reports every instruction that sits in the squash shadow of a replay
// handle with a secret-dependent resource footprint, labelled by leak
// channel (cache-set, port, latency, random-replay).
//
// With -prove it becomes a verifier: a path-sensitive abstract
// interpretation classifies the program PROVEN-SAFE, LEAKY or UNKNOWN,
// and every definite verdict is checked against the cycle-level
// simulator — LEAKY ships two concrete secret assignments whose replay
// runs diverge on the claimed channel, PROVEN-SAFE ships a randomized
// differential certificate. -repair additionally proposes fence
// insertions and re-verifies the patched program.
//
// Scan a built-in victim:
//
//	mscan -victim aes
//	mscan -victim modexp -json
//
// Verify and repair:
//
//	mscan -victim controlflow -prove -witness
//	mscan -victim singlesecret -prove -repair -json
//
// With -sanitize it runs the victim under the MicroScope module with
// the SpecSan shadow-taint sanitizer (sim/sanitizer) attached and
// reconciles the dynamic transmit findings against the static scan
// (see docs/sanitizer.md for the three-way protocol):
//
//	mscan -victim controlflow -sanitize
//	mscan -victim aes -sanitize -json
//
// Scan an assembly file, declaring the secrets by hand:
//
//	mscan -asm prog.s -secret-mem 0x41000000:0x41001000 -secret-reg r5
//
// Exit status, when -fail is set (for CI use):
//
//	0  clean scan / PROVEN-SAFE
//	1  findings exist (scan mode) or verdict LEAKY (-prove)
//	2  verdict UNKNOWN (-prove)
//
// Usage and input errors always exit 3. Without -fail the exit status is
// 0 whenever a report was produced. Under -prove -repair the exit code
// reflects the original program's verdict; the repair outcome is
// informational.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"

	"microscope/analysis/static"
	"microscope/analysis/verify"
	"microscope/attack/experiments"
	"microscope/attack/victim"
	"microscope/sim/isa"
)

// options carries the parsed command line; run takes it explicitly so
// tests can exercise every mode and exit code without a subprocess.
type options struct {
	victim string
	asm    string
	rob    int
	json   bool
	fail   bool

	secretRegs string
	secretMems string
	noRdrand   bool

	sanitize bool

	prove        bool
	repair       bool
	witness      bool
	handle       string
	trials       int
	witnessPairs int
	maxPaths     int
}

func newFlagSet() *flag.FlagSet {
	return flag.NewFlagSet("mscan", flag.ContinueOnError)
}

func parseFlags(fs *flag.FlagSet, args []string) (options, error) {
	var o options
	fs.StringVar(&o.victim, "victim", "", "scan a built-in victim: "+strings.Join(victimNames(), ", "))
	fs.StringVar(&o.asm, "asm", "", "scan an assembly file (see sim/isa syntax)")
	fs.IntVar(&o.rob, "rob", 0, "squash-shadow depth in instructions (0: default core ROB size)")
	fs.BoolVar(&o.json, "json", false, "emit the report as JSON")
	fs.BoolVar(&o.fail, "fail", false, "exit 1 on findings/LEAKY and 2 on UNKNOWN (for CI use)")
	fs.StringVar(&o.secretRegs, "secret-reg", "", "comma-separated secret registers for -asm input (e.g. r5,r7)")
	fs.StringVar(&o.secretMems, "secret-mem", "", "comma-separated secret ranges lo:hi for -asm input (hex accepted)")
	fs.BoolVar(&o.noRdrand, "no-rdrand-taint", false, "do not treat RDRAND results as secrets")
	fs.BoolVar(&o.sanitize, "sanitize", false, "run the victim under the SpecSan taint sanitizer and reconcile dynamic findings against the static scan")
	fs.BoolVar(&o.prove, "prove", false, "run the verifier: classify PROVEN-SAFE / LEAKY / UNKNOWN with simulator-checked evidence")
	fs.BoolVar(&o.repair, "repair", false, "with -prove: propose fence insertions and re-verify the patched program")
	fs.BoolVar(&o.witness, "witness", false, "with -prove: print the full witness assignments and projections")
	fs.StringVar(&o.handle, "handle", "", "with -prove: layout symbol of the replay-handle page (default: per-victim convention)")
	fs.IntVar(&o.trials, "trials", 0, "with -prove: randomized-differential trials backing PROVEN-SAFE (0: default)")
	fs.IntVar(&o.witnessPairs, "witness-pairs", -1, "with -prove: candidate witness pairs simulated per site (-1: default)")
	fs.IntVar(&o.maxPaths, "max-paths", 0, "with -prove: abstract path-exploration budget (0: default)")
	if err := fs.Parse(args); err != nil {
		return o, err
	}
	return o, nil
}

// builtin describes one -victim target: a constructor returning the
// layout whose program and secret declaration are scanned, and the
// layout symbol of the replay handle the verifier's dynamic runs (and
// the -sanitize replay run) arm. The table itself lives in
// attack/experiments (SanTargets) so the CLI, the sanitizer
// cross-validation tests and the fuzz corpus agree on one set of
// targets.
type builtin struct {
	name   string
	handle string
	build  func() (*victim.Layout, error)
}

func builtins() []builtin {
	var out []builtin
	for _, t := range experiments.SanTargets() {
		out = append(out, builtin{t.Name, t.Handle, t.Build})
	}
	return out
}

func victimNames() []string {
	var names []string
	for _, b := range builtins() {
		names = append(names, b.name)
	}
	sort.Strings(names)
	return names
}

// Exit codes (see the package comment).
const (
	exitOK      = 0
	exitLeaky   = 1
	exitUnknown = 2
	exitUsage   = 3
)

func main() {
	o, err := parseFlags(newFlagSet(), os.Args[1:])
	if err != nil {
		os.Exit(exitUsage)
	}
	code, err := run(o, os.Stdout)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mscan:", err)
	}
	os.Exit(code)
}

// run executes one scan or verification and returns the process exit
// code. Any returned error is a usage or input error (code exitUsage).
func run(o options, out io.Writer) (int, error) {
	if o.victim != "" && o.asm != "" {
		return exitUsage, fmt.Errorf("-victim and -asm are mutually exclusive")
	}
	if o.prove && o.sanitize {
		return exitUsage, fmt.Errorf("-prove and -sanitize are mutually exclusive")
	}
	if o.prove {
		return runProve(o, out)
	}
	if o.sanitize {
		return runSanitize(o, out)
	}

	var (
		name string
		prog *isa.Program
		sec  static.Secrets
	)
	switch {
	case o.victim != "":
		b, err := findBuiltin(o.victim)
		if err != nil {
			return exitUsage, err
		}
		l, err := b.build()
		if err != nil {
			return exitUsage, err
		}
		name, prog = l.Name, l.Prog
		sec.Regs = l.SecretRegs
		for _, m := range l.SecretMems() {
			sec.Mems = append(sec.Mems, static.MemRange{Lo: m[0], Hi: m[1]})
		}
	case o.asm != "":
		src, err := os.ReadFile(o.asm)
		if err != nil {
			return exitUsage, err
		}
		prog, err = isa.TryAssemble(string(src))
		if err != nil {
			return exitUsage, err
		}
		name = o.asm
		if sec, err = parseSecrets(o.secretRegs, o.secretMems); err != nil {
			return exitUsage, err
		}
	default:
		return exitUsage, fmt.Errorf("one of -victim or -asm is required (victims: %s)",
			strings.Join(victimNames(), ", "))
	}

	cfg := static.DefaultConfig()
	if o.rob > 0 {
		cfg.ROBWindow = o.rob
	}
	cfg.TaintRdrand = !o.noRdrand

	report, err := static.Analyze(name, prog, sec, cfg)
	if err != nil {
		return exitUsage, err
	}
	if o.json {
		out2, err := report.JSON()
		if err != nil {
			return exitUsage, err
		}
		fmt.Fprintf(out, "%s\n", out2)
	} else {
		fmt.Fprint(out, report.Text())
	}
	if o.fail && report.HasFindings() {
		return exitLeaky, nil
	}
	return exitOK, nil
}

func findBuiltin(name string) (builtin, error) {
	for _, b := range builtins() {
		if b.name == name {
			return b, nil
		}
	}
	return builtin{}, fmt.Errorf("unknown victim %q (have: %s)", name, strings.Join(victimNames(), ", "))
}

// parseSecrets turns the -secret-reg / -secret-mem flag values into a
// Secrets declaration.
func parseSecrets(regs, mems string) (static.Secrets, error) {
	var sec static.Secrets
	for _, tok := range splitList(regs) {
		r, err := parseReg(tok)
		if err != nil {
			return sec, err
		}
		sec.Regs = append(sec.Regs, r)
	}
	for _, tok := range splitList(mems) {
		lo, hi, ok := strings.Cut(tok, ":")
		if !ok {
			return sec, fmt.Errorf("-secret-mem range %q not of form lo:hi", tok)
		}
		l, err := parseUint(lo)
		if err != nil {
			return sec, fmt.Errorf("-secret-mem %q: %v", tok, err)
		}
		h, err := parseUint(hi)
		if err != nil {
			return sec, fmt.Errorf("-secret-mem %q: %v", tok, err)
		}
		if h <= l {
			return sec, fmt.Errorf("-secret-mem %q: empty range", tok)
		}
		sec.Mems = append(sec.Mems, static.MemRange{Lo: l, Hi: h})
	}
	return sec, nil
}

// parseUint accepts decimal or 0x-prefixed hex.
func parseUint(s string) (uint64, error) {
	return strconv.ParseUint(strings.TrimPrefix(strings.ToLower(s), "0x"), hexBase(s), 64)
}

func hexBase(s string) int {
	if strings.HasPrefix(strings.ToLower(s), "0x") {
		return 16
	}
	return 10
}

func splitList(s string) []string {
	var out []string
	for _, tok := range strings.Split(s, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			out = append(out, tok)
		}
	}
	return out
}

func parseReg(tok string) (isa.Reg, error) {
	t := strings.ToLower(tok)
	if len(t) < 2 || (t[0] != 'r' && t[0] != 'f') {
		return isa.NoReg, fmt.Errorf("bad register %q (want r0-r15 or f0-f15)", tok)
	}
	n, err := strconv.Atoi(t[1:])
	if err != nil || n < 0 || n > 15 {
		return isa.NoReg, fmt.Errorf("bad register %q (want r0-r15 or f0-f15)", tok)
	}
	if t[0] == 'f' {
		return isa.F0 + isa.Reg(n), nil
	}
	return isa.R0 + isa.Reg(n), nil
}

// verifyConfig maps the command line onto the verifier's bounds.
func verifyConfig(o options) verify.Config {
	cfg := verify.DefaultConfig()
	if o.rob > 0 {
		cfg.Static.ROBWindow = o.rob
	}
	cfg.Static.TaintRdrand = !o.noRdrand
	if o.trials > 0 {
		cfg.Trials = o.trials
	}
	if o.witnessPairs >= 0 {
		cfg.MaxWitnessPairs = o.witnessPairs
	}
	if o.maxPaths > 0 {
		cfg.MaxPaths = o.maxPaths
	}
	return cfg
}
