package main

import (
	"encoding/json"
	"fmt"
	"io"

	"microscope/analysis/verify"
)

// The -prove mode: run the constant-time verifier (and optionally the
// fence-repair pass) over a built-in victim and render the outcome.

// proveOutput is the -prove -json document.
type proveOutput struct {
	Result *verify.Result       `json:"result"`
	Repair *verify.RepairResult `json:"repair,omitempty"`
}

func runProve(o options, out io.Writer) (int, error) {
	if o.victim == "" {
		return exitUsage, fmt.Errorf("-prove requires -victim (the dynamic witness runs need a full memory layout)")
	}
	b, err := findBuiltin(o.victim)
	if err != nil {
		return exitUsage, err
	}
	lay, err := b.build()
	if err != nil {
		return exitUsage, err
	}

	sub := verify.NewSubject(lay)
	handleSym := b.handle
	if o.handle != "" {
		handleSym = o.handle
	}
	h, ok := lay.Symbols[handleSym]
	if !ok {
		return exitUsage, fmt.Errorf("victim %s has no symbol %q for the replay handle", lay.Name, handleSym)
	}
	sub.Handle = h

	cfg := verifyConfig(o)
	doc := &proveOutput{}
	if o.repair {
		rr, err := verify.Repair(sub, cfg)
		if err != nil {
			return exitUsage, err
		}
		doc.Repair = rr
	}
	res, err := verify.Verify(sub, cfg)
	if err != nil {
		return exitUsage, err
	}
	doc.Result = res

	if o.json {
		enc, err := json.MarshalIndent(doc, "", "  ")
		if err != nil {
			return exitUsage, err
		}
		fmt.Fprintf(out, "%s\n", enc)
	} else {
		renderProve(out, doc, o.witness)
	}

	if o.fail {
		switch res.Verdict {
		case verify.Leaky:
			return exitLeaky, nil
		case verify.Unknown:
			return exitUnknown, nil
		case verify.ProvenSafe:
			// Falls through to exitOK: a proof of safety is the one
			// verdict -fail accepts.
		}
	}
	return exitOK, nil
}

// renderProve writes the human-readable verification report.
func renderProve(out io.Writer, doc *proveOutput, fullWitness bool) {
	res := doc.Result
	fmt.Fprintf(out, "program %s: verdict %s\n", res.Program, res.Verdict)
	fmt.Fprintf(out, "  %s\n", res.Reason)
	completeness := "complete"
	if !res.Complete {
		completeness = "incomplete"
	}
	fmt.Fprintf(out, "  exploration: %d path(s), %d step(s), %s\n", res.Paths, res.Steps, completeness)

	if len(res.Sites) > 0 {
		fmt.Fprintf(out, "  %d abstract site(s):\n", len(res.Sites))
		for _, s := range res.Sites {
			kind := "data"
			if s.Implicit {
				kind = "implicit"
			}
			fmt.Fprintf(out, "    @%-4d %-24s %-15s %-9s handle @%d +%d atoms %v\n",
				s.PC, s.Instr, s.Channel, kind, s.Handle, s.Distance, s.Atoms)
		}
	}
	if w := res.Witness; w != nil {
		fmt.Fprintf(out, "  witness: site @%d, %s channel diverges\n", w.SitePC, w.Channel)
		if fullWitness {
			fmt.Fprintf(out, "    A: %s -> cache=%#x port=%#x latency=%#x\n",
				assignmentString(w.A), w.ProjA.Cache, w.ProjA.Port, w.ProjA.Latency)
			fmt.Fprintf(out, "    B: %s -> cache=%#x port=%#x latency=%#x\n",
				assignmentString(w.B), w.ProjB.Cache, w.ProjB.Port, w.ProjB.Latency)
		}
	}
	if c := res.Certificate; c != nil {
		fmt.Fprintf(out, "  certificate: %d randomized trials, all channel projections identical to baseline\n", c.Trials)
	}
	if rr := doc.Repair; rr != nil {
		fmt.Fprintf(out, "repair: %d round(s), %d fence(s) at %v\n", rr.Rounds, rr.Inserted, rr.Fences)
		fmt.Fprintf(out, "  repaired program: verdict %s (%s)\n", rr.Result.Verdict, rr.Result.Reason)
	}
}

// assignmentString renders one witness assignment compactly.
func assignmentString(a verify.Assignment) string {
	s := ""
	for _, rv := range a.Regs {
		s += fmt.Sprintf("%s=%#x ", rv.Reg, rv.Val)
	}
	for _, mv := range a.Mems {
		s += fmt.Sprintf("[%#x]=%#x ", mv.Addr, mv.Val)
	}
	if a.SeedSet {
		s += fmt.Sprintf("seed=%#x ", a.Seed)
	}
	if s == "" {
		return "baseline"
	}
	return s[:len(s)-1]
}
