package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"testing"

	"microscope/analysis/verify"
)

// The verify-gate: every builtin victim's verdict under the default
// verifier configuration is pinned in testdata/golden_verdicts.json.
// A verdict flip (a victim silently becoming UNKNOWN, or the
// constant-time control going LEAKY) fails CI; intentional changes are
// regenerated with:
//
//	go test ./cmd/mscan -run TestGoldenVerdicts -update

var updateGolden = flag.Bool("update", false, "rewrite the golden verdicts file")

const goldenPath = "testdata/golden_verdicts.json"

// proveBuiltin verifies one builtin with its conventional handle.
func proveBuiltin(t *testing.T, b builtin) *verify.Result {
	t.Helper()
	lay, err := b.build()
	if err != nil {
		t.Fatal(err)
	}
	sub := verify.NewSubject(lay)
	sub.Handle = lay.Sym(b.handle)
	res, err := verify.Verify(sub, verify.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestGoldenVerdicts(t *testing.T) {
	got := make(map[string]string)
	var mu sync.Mutex
	var wg sync.WaitGroup
	for _, b := range builtins() {
		b := b
		wg.Add(1)
		go func() {
			defer wg.Done()
			res := proveBuiltin(t, b)
			mu.Lock()
			got[b.name] = res.Verdict.String()
			mu.Unlock()
		}()
	}
	wg.Wait()

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		enc, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, append(enc, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", goldenPath)
		return
	}

	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading golden verdicts (run with -update to create them): %v", err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	var names []string
	for n := range got {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		w, ok := want[n]
		if !ok {
			t.Errorf("%s: no golden verdict committed (run with -update)", n)
			continue
		}
		if got[n] != w {
			t.Errorf("%s: verdict %s, golden says %s\n"+
				"if this change is intentional, regenerate with -update and review the diff", n, got[n], w)
		}
	}
	for n := range want {
		if _, ok := got[n]; !ok {
			t.Errorf("golden file names unknown victim %q (stale entry; run with -update)", n)
		}
	}
}

// The golden file must contain at least one victim of each definite
// verdict, or the gate proves nothing.
func TestGoldenVerdictsCoverBothClasses(t *testing.T) {
	raw, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatal(err)
	}
	want := make(map[string]string)
	if err := json.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	counts := make(map[string]int)
	for _, v := range want {
		counts[v]++
	}
	if counts["LEAKY"] == 0 || counts["PROVEN-SAFE"] == 0 {
		t.Fatalf("golden verdicts must include both LEAKY and PROVEN-SAFE victims: %v", want)
	}
	if counts["UNKNOWN"] != 0 {
		t.Fatalf("a builtin victim regressed to UNKNOWN: %v", want)
	}
}

// Exit codes are part of the CLI contract (see the package comment):
// 0 clean/PROVEN-SAFE, 1 findings/LEAKY, 2 UNKNOWN, 3 usage errors —
// the latter two only distinguished under -fail / -prove.
func TestExitCodes(t *testing.T) {
	cases := []struct {
		name    string
		opts    options
		code    int
		wantErr bool
	}{
		{"no input", options{}, exitUsage, true},
		{"both inputs", options{victim: "aes", asm: "x.s"}, exitUsage, true},
		{"unknown victim", options{victim: "nope"}, exitUsage, true},
		{"prove requires victim", options{prove: true}, exitUsage, true},
		{"prove unknown handle", options{victim: "aes", prove: true, handle: "nope", witnessPairs: -1}, exitUsage, true},
		{"scan findings no fail", options{victim: "controlflow"}, exitOK, false},
		{"scan findings fail", options{victim: "controlflow", fail: true}, exitLeaky, false},
		{"scan clean fail", options{victim: "ctcontrol", fail: true}, exitOK, false},
		// witnessPairs -1 is the flag default ("use the verifier's");
		// the zero value is a genuine zero-pair budget, used below.
		{"prove safe fail", options{victim: "ctcontrol", prove: true, fail: true, witnessPairs: -1}, exitOK, false},
		{"prove leaky fail", options{victim: "controlflow", prove: true, fail: true, witnessPairs: -1}, exitLeaky, false},
		{"prove leaky no fail", options{victim: "controlflow", prove: true, witnessPairs: -1}, exitOK, false},
		// Zero witness pairs leave the abstract sites unconfirmed:
		// honest UNKNOWN, distinguished from LEAKY by its exit code.
		{"prove unknown fail", options{victim: "controlflow", prove: true, fail: true, witnessPairs: 0}, exitUnknown, false},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			var buf bytes.Buffer
			code, err := run(c.opts, &buf)
			if code != c.code {
				t.Fatalf("exit code = %d, want %d (err: %v)", code, c.code, err)
			}
			if (err != nil) != c.wantErr {
				t.Fatalf("err = %v, wantErr = %v", err, c.wantErr)
			}
		})
	}
}

// -prove -repair on a leaky victim must report a PROVEN-SAFE repaired
// program alongside the original LEAKY verdict.
func TestProveRepairOutput(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{victim: "controlflow", prove: true, repair: true, witnessPairs: -1}, &buf)
	if err != nil || code != exitOK {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	out := buf.String()
	for _, want := range []string{
		"verdict LEAKY",
		"witness:",
		"repair:",
		"repaired program: verdict PROVEN-SAFE",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
}

// The JSON document must round-trip and carry the witness evidence.
func TestProveJSON(t *testing.T) {
	var buf bytes.Buffer
	code, err := run(options{victim: "controlflow", prove: true, json: true, witnessPairs: -1}, &buf)
	if err != nil || code != exitOK {
		t.Fatalf("run: code %d, err %v", code, err)
	}
	var doc struct {
		Result *verify.Result `json:"result"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("invalid JSON: %v\n%s", err, buf.String())
	}
	if doc.Result == nil || doc.Result.Verdict != verify.Leaky {
		t.Fatalf("JSON result = %+v, want LEAKY", doc.Result)
	}
	if doc.Result.Witness == nil || len(doc.Result.Sites) == 0 {
		t.Fatalf("JSON result lacks witness or sites: %+v", doc.Result)
	}
}

// parseFlags must accept every documented flag.
func TestParseFlags(t *testing.T) {
	o, err := parseFlags(newFlagSet(), []string{
		"-victim", "aes", "-prove", "-repair", "-witness",
		"-handle", "stack", "-trials", "8", "-witness-pairs", "4",
		"-max-paths", "64", "-fail", "-json",
	})
	if err != nil {
		t.Fatal(err)
	}
	if !o.prove || !o.repair || !o.witness || o.handle != "stack" ||
		o.trials != 8 || o.witnessPairs != 4 || o.maxPaths != 64 || !o.fail || !o.json {
		t.Fatalf("parsed options = %+v", o)
	}
}
