package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func runSanitizeCLI(t *testing.T, args ...string) (int, string) {
	t.Helper()
	o, err := parseFlags(newFlagSet(), args)
	if err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	var buf bytes.Buffer
	code, err := run(o, &buf)
	if err != nil && code != exitUsage {
		t.Fatalf("run %v: %v", args, err)
	}
	return code, buf.String()
}

func TestSanitizeExitCodes(t *testing.T) {
	// A leaky victim under -fail: transient transmits observed -> 1.
	code, out := runSanitizeCLI(t, "-victim", "controlflow", "-sanitize", "-fail")
	if code != exitLeaky {
		t.Errorf("controlflow -sanitize -fail: code %d, want %d\n%s", code, exitLeaky, out)
	}
	if !strings.Contains(out, "confirmed") {
		t.Errorf("report lacks a confirmed reconciliation entry:\n%s", out)
	}
	// The constant-time control: no transmits -> 0 even under -fail.
	code, out = runSanitizeCLI(t, "-victim", "ctcontrol", "-sanitize", "-fail")
	if code != exitOK {
		t.Errorf("ctcontrol -sanitize -fail: code %d, want %d\n%s", code, exitOK, out)
	}
	if !strings.Contains(out, "no dynamic transmit events") {
		t.Errorf("clean report missing the no-findings line:\n%s", out)
	}
}

func TestSanitizeUsageErrors(t *testing.T) {
	if code, _ := runSanitizeCLI(t, "-sanitize"); code != exitUsage {
		t.Errorf("-sanitize without -victim: code %d, want %d", code, exitUsage)
	}
	if code, _ := runSanitizeCLI(t, "-victim", "controlflow", "-sanitize", "-prove"); code != exitUsage {
		t.Errorf("-sanitize with -prove: code %d, want %d", code, exitUsage)
	}
	if code, _ := runSanitizeCLI(t, "-victim", "nosuch", "-sanitize"); code != exitUsage {
		t.Errorf("unknown victim: code %d, want %d", code, exitUsage)
	}
}

func TestSanitizeJSON(t *testing.T) {
	_, out := runSanitizeCLI(t, "-victim", "modexp", "-sanitize", "-json")
	var doc sanitizeOutput
	if err := json.Unmarshal([]byte(out), &doc); err != nil {
		t.Fatalf("not valid JSON: %v\n%s", err, out)
	}
	if doc.Target != "modexp" {
		t.Errorf("target %q, want modexp", doc.Target)
	}
	if doc.Replays == 0 || len(doc.Findings) == 0 {
		t.Errorf("expected replays and findings: replays=%d findings=%d", doc.Replays, len(doc.Findings))
	}
	if doc.Reconciliation == nil || len(doc.Reconciliation.Entries) == 0 {
		t.Error("reconciliation missing from JSON document")
	}
	if doc.Counts["UNEXPLAINED"] != 0 {
		t.Errorf("unexplained entries in builtin run: %v", doc.Counts)
	}
}
