// Command asmlab is an attack-exploration lab: it loads a victim written
// as a textual script (ISA assembly plus `;;` region/init/symbol
// directives — see attack/victim.ParseScript), installs a MicroScope
// recipe against it, and reports what each replay window exposed.
//
// Example:
//
//	go run ./cmd/asmlab -script examples/asmlab/victim.s \
//	    -handle handle -probe probe -lines 4 -replays 5
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microscope/attack/experiments"
	"microscope/attack/microscope"
	"microscope/attack/victim"
	"microscope/sim/cache"
	"microscope/sim/cpu"
	"microscope/sim/isa"
	"microscope/sim/mem"
)

func main() {
	script := flag.String("script", "", "victim script file")
	handle := flag.String("handle", "handle", "replay-handle symbol")
	pivot := flag.String("pivot", "", "pivot symbol (optional)")
	probe := flag.String("probe", "", "probe symbol (cache lines to watch)")
	lines := flag.Int("lines", 4, "number of 64-byte lines to probe")
	replays := flag.Int("replays", 5, "replays before release")
	walk := flag.Int("walk", 4, "page-table levels served from memory (1-4)")
	disasm := flag.Bool("disasm", false, "print the assembled victim and exit")
	flag.Parse()
	if *script == "" {
		fmt.Fprintln(os.Stderr, "asmlab: -script is required")
		flag.Usage()
		os.Exit(2)
	}
	if err := run(*script, *handle, *pivot, *probe, *lines, *replays, *walk, *disasm); err != nil {
		fmt.Fprintln(os.Stderr, "asmlab:", err)
		os.Exit(1)
	}
}

func run(scriptPath, handleSym, pivotSym, probeSym string, lines, replays, walk int, disasm bool) error {
	src, err := os.ReadFile(scriptPath)
	if err != nil {
		return err
	}
	l, err := victim.ParseScript(scriptPath, string(src))
	if err != nil {
		return err
	}
	if disasm {
		fmt.Print(isa.Disassemble(l.Prog))
		return nil
	}

	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	if err := rig.InstallVictim(l); err != nil {
		return err
	}

	var probeAddrs []mem.Addr
	if probeSym != "" {
		base := l.Sym(probeSym)
		for i := 0; i < lines; i++ {
			probeAddrs = append(probeAddrs, base+mem.Addr(i)*64)
		}
	}

	rec := &microscope.Recipe{
		Name:       "asmlab",
		Victim:     rig.Victim,
		Handle:     l.Sym(handleSym),
		WalkLevels: walk,
	}
	if pivotSym != "" {
		rec.Pivot = l.Sym(pivotSym)
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		kind := "handle"
		if ev.OnPivot {
			kind = "pivot"
		}
		hot := describeProbe(rig, probeAddrs)
		fmt.Printf("fault %2d (%-6s replay %2d, cycle %8d): hot lines %s\n",
			ev.TotalFaults, kind, ev.Replays, ev.Cycle, hot)
		if err := rig.Module.PrimeAddrs(rig.Victim, probeAddrs); err != nil {
			fmt.Fprintln(os.Stderr, "asmlab: prime:", err)
			return microscope.Release
		}
		if ev.OnPivot {
			return microscope.Pivot
		}
		if ev.Replays >= replays {
			if rec.Pivot != 0 {
				return microscope.Pivot
			}
			return microscope.Release
		}
		return microscope.Replay
	}
	if err := rig.Module.Install(rec); err != nil {
		return err
	}
	l.Start(rig.Kernel, 0)
	if err := rig.Run(100_000_000); err != nil {
		return err
	}

	fmt.Printf("\nvictim finished: %t; total faults: %d\n",
		rig.Core.Context(0).Halted(), rec.TotalFaults())
	fmt.Printf("registers: %s\n", describeRegs(rig))
	return nil
}

func describeProbe(rig *experiments.Rig, addrs []mem.Addr) string {
	if len(addrs) == 0 {
		return "(no probe)"
	}
	prs, err := rig.Module.ProbeAddrs(rig.Victim, addrs)
	if err != nil {
		return "error: " + err.Error()
	}
	var hot []string
	for i, pr := range prs {
		if pr.Level != cache.LevelMem {
			hot = append(hot, fmt.Sprintf("%d(%s)", i, pr.Level))
		}
	}
	if len(hot) == 0 {
		return "none"
	}
	return strings.Join(hot, " ")
}

func describeRegs(rig *experiments.Rig) string {
	ctx := rig.Core.Context(0)
	var parts []string
	for r := isa.R1; r <= isa.R8; r++ {
		if v := ctx.Reg(r); v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%#x", r, v))
		}
	}
	if len(parts) == 0 {
		return "(all zero)"
	}
	return strings.Join(parts, " ")
}
