package main

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"microscope/sim/trace"
)

// The CLI acceptance check: `microscope -trace out.json -metrics
// timeline` must emit a schema-valid Chrome Trace Event JSON of a full
// replay attack, byte-identically across runs.
func TestTimelineTraceFlagEmitsValidChrome(t *testing.T) {
	dir := t.TempDir()
	out := filepath.Join(dir, "out.json")

	oldTrace, oldMetrics := *traceOut, *showMetrics
	defer func() { *traceOut, *showMetrics = oldTrace, oldMetrics }()
	*traceOut = out
	*showMetrics = true

	if err := runTimeline(); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.ValidateChrome(data); err != nil {
		t.Fatalf("-trace output fails Chrome trace schema validation: %v", err)
	}
	// The annotated replay track must make it into the export.
	if !bytes.Contains(data, []byte("replayer: timeline")) {
		t.Error("-trace output is missing the module's replayer annotation track")
	}

	// Determinism: a second run writes identical bytes.
	out2 := filepath.Join(dir, "out2.json")
	*traceOut = out2
	if err := runTimeline(); err != nil {
		t.Fatal(err)
	}
	data2, err := os.ReadFile(out2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, data2) {
		t.Error("-trace output differs between identical runs")
	}
}
