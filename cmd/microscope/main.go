// Command microscope is the framework's exploration CLI. Subcommands map
// to the paper's non-headline tables and figures:
//
//	table1     — print the Table 1 side-channel taxonomy
//	table2     — demonstrate each Table 2 user-API operation
//	timeline   — print the Fig. 3 Replayer/Victim timeline of a real attack
//	execpath   — narrate the Fig. 9 kernel execution path of one fault
//	generalize — run the Fig. 12 replay-handle generalizations (§7)
//	defenses   — evaluate the §8 countermeasures
//	tournament — run the victim x handle x defense cross-product matrix
//	denoise    — print the replay-count/confidence denoising curve
//	baselines  — run the §2.4 prior attacks for comparison
//	walk       — print a Fig. 2 four-level page-table walk
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"microscope/analysis/sidechan"
	"microscope/attack/baseline"
	"microscope/attack/defense"
	"microscope/attack/experiments"
	"microscope/attack/microscope"
	"microscope/attack/replay"
	"microscope/attack/victim"
	"microscope/sim/cpu"
	"microscope/sim/sanitizer"
	"microscope/sim/snapshot"
	"microscope/sim/trace"
)

// workers bounds the goroutines of subcommands that fan independent
// simulations out as parallel sweeps (currently `baselines`); any value
// yields identical output.
var workers = flag.Int("workers", 0,
	"parallel sweep workers (<=0: GOMAXPROCS); results are identical for any value")

// showStats, for subcommands that drive a single simulated core (table2,
// timeline, execpath, walk), appends per-context pipeline statistics, the
// fast-forward skip count, the replay-memo splice counters and host
// allocation counters after the subcommand's normal output.
var showStats = flag.Bool("stats", false,
	"print per-context pipeline statistics, fast-forward skip counts, replay-memo counters and host allocation counters after the run")

// Profiling hooks: the CLI doubles as the perf-work harness, so any
// subcommand can be profiled directly instead of reconstructing its
// workload in a benchmark.
var cpuProfile = flag.String("cpuprofile", "",
	"write a CPU profile of the whole run to this file (inspect with `go tool pprof`)")

var memProfile = flag.String("memprofile", "",
	"write a heap profile at command exit to this file (inspect with `go tool pprof`)")

// traceOut and showMetrics attach the sim/trace observability stack to
// subcommands that drive a single simulated core (table2, timeline,
// execpath): a Chrome Trace Event JSON of every instruction lifecycle,
// and deterministic aggregate pipeline metrics.
var traceOut = flag.String("trace", "",
	"write a Chrome Trace Event JSON of the run to this file (Perfetto-loadable; table2, timeline, execpath)")

var showMetrics = flag.Bool("metrics", false,
	"print deterministic aggregate pipeline metrics after the run (table2, timeline, execpath)")

// sanitize attaches the SpecSan shadow-taint engine (sim/sanitizer) to
// subcommands that drive a single simulated core: shadow state is
// seeded from the victim's secret declaration, transmit events are
// printed after the run with replay attribution, and -trace output
// gains a "specsan" track pinning each finding to its replay iteration.
var sanitize = flag.Bool("sanitize", false,
	"attach the SpecSan taint sanitizer and report secret-transmit events after the run (table2, timeline, execpath)")

// Checkpointing flags (timeline subcommand). -checkpoint-every snapshots
// the whole machine (memory, core, kernel, module) on a fixed cycle
// period into an in-memory list; -reverse-to K then "steps backwards" by
// restoring the nearest checkpoint at or below cycle K and re-running
// forward to exactly K — deterministic replay makes the re-run
// bit-identical to the original pass through that cycle. -checkpoint-out
// writes the machine state at command exit as a gob image that
// tools/snapdiff can diff against another run's.
var checkpointEvery = flag.Uint64("checkpoint-every", 0,
	"snapshot the machine every N cycles during `timeline` (enables -reverse-to)")

var reverseTo = flag.Uint64("reverse-to", 0,
	"after `timeline` completes, restore the nearest checkpoint <= K and re-run to cycle K, then print the machine state (requires -checkpoint-every)")

var checkpointOut = flag.String("checkpoint-out", "",
	"write the machine snapshot at `timeline` exit to this file (gob; diff two with tools/snapdiff)")

// jsonOut switches the tournament subcommand from the rendered grids to
// the byte-deterministic JSON matrix — the exact bytes the golden test
// gates, so CI diffs and the committed testdata stay comparable.
var jsonOut = flag.Bool("json", false,
	"print the tournament matrix as canonical JSON instead of rendered tables (`tournament` only)")

// observers is the tracer stack the -trace/-metrics flags request.
type observers struct {
	col *trace.Collector
	met *trace.Metrics
	san *sanitizer.Sanitizer
}

// attachSanitizer seeds a SpecSan shadow engine from the victim's
// secret declaration and attaches it to the rig's core. Returns nil
// without touching the core when -sanitize is unset, preserving the
// zero-overhead-when-off guarantee.
func (o *observers) attachSanitizer(rig *experiments.Rig, l *victim.Layout) error {
	if !*sanitize {
		return nil
	}
	san := sanitizer.New(rig.Core, sanitizer.DefaultConfig())
	for _, r := range l.SecretRegs {
		san.SeedReg(0, r, r.String())
	}
	for i, name := range l.SecretRegions {
		rng := l.SecretMems()[i]
		if err := san.SeedMemory(rig.Victim.AddressSpace(), rng[0], rng[1], name); err != nil {
			return err
		}
	}
	rig.Core.SetShadow(san)
	o.san = san
	return nil
}

// attachObservers builds the requested sinks and attaches them to core.
// With neither flag set the core keeps a nil tracer and pays nothing.
func attachObservers(core *cpu.Core) *observers {
	o := &observers{}
	var sinks []cpu.Tracer
	if *traceOut != "" {
		o.col = trace.NewCollector(0)
		sinks = append(sinks, o.col)
	}
	if *showMetrics {
		o.met = trace.NewMetrics()
		o.met.ROBSize = core.Config().ROBSize
		sinks = append(sinks, o.met)
	}
	core.SetTracer(trace.Tee(sinks...))
	return o
}

// finish prints the sanitizer findings (replay-attributed from the
// module timeline), writes the Chrome trace (annotated with the
// module's replay timeline and the specsan track), and prints the
// metrics block.
func (o *observers) finish(mod *microscope.Module) error {
	if o.san != nil {
		o.san.Flush()
		if mod != nil {
			o.san.AttributeReplays(experiments.ReplayWindows(mod.Timeline()))
		}
		printSanitizerFindings(o.san)
	}
	if o.col != nil {
		var anns []trace.Annotation
		if mod != nil {
			anns = mod.TraceAnnotations()
		}
		if o.san != nil {
			anns = append(anns, o.san.Annotations()...)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			return err
		}
		if err := trace.WriteChrome(f, o.col, anns); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("wrote Chrome trace to %s (open in Perfetto or chrome://tracing)\n", *traceOut)
	}
	if o.met != nil {
		fmt.Println("\n-- pipeline metrics --")
		fmt.Print(o.met.Text())
	}
	return nil
}

// printSanitizerFindings renders the SpecSan transmit-finding block.
func printSanitizerFindings(san *sanitizer.Sanitizer) {
	fmt.Println("\n-- SpecSan transmit findings --")
	fs := san.Findings()
	if len(fs) == 0 {
		fmt.Println("none: no tainted data reached an observable channel")
		return
	}
	for _, f := range fs {
		flow := "explicit"
		if f.Implicit {
			flow = "implicit"
		}
		fmt.Printf("@%-4d %-24s %-15s %-9s transient %d/%d instances, %d replay window(s), taint %v\n",
			f.PC, f.Instr, f.Channel, flow, f.Transient, f.Count, f.Replays, san.AtomLabels(f.Taint))
	}
}

// printStats renders the post-run statistics block for core. The host
// allocation figures come from the Go runtime and naturally vary between
// machines; everything above them is deterministic simulation state.
func printStats(core *cpu.Core) {
	if !*showStats {
		return
	}
	cycles := core.Cycle()
	skipped := core.SkippedCycles()
	pct := 0.0
	if cycles > 0 {
		pct = 100 * float64(skipped) / float64(cycles)
	}
	fmt.Println("\n-- simulation statistics --")
	fmt.Printf("core:  cycles=%d fast-forwarded=%d (%.1f%%)\n", cycles, skipped, pct)
	for i := 0; i < core.Contexts(); i++ {
		ctx := core.Context(i)
		if ctx.Program() == nil {
			continue
		}
		s := ctx.Stats()
		fmt.Printf("ctx%d:  fetched=%d retired=%d squashed=%d faults=%d txaborts=%d\n",
			i, s.Fetched, s.Retired, s.Squashed, s.PageFaults, s.TxAborts)
		fmt.Printf("       mispredicts=%d memorder=%d stall-cycles=%d skipped-cycles=%d\n",
			s.Mispredicts, s.MemOrderViolations, s.StallCycles, s.SkippedCycles)
	}
	mm := core.MemoStats()
	fmt.Printf("memo:  hits=%d misses=%d invalidations=%d spliced-cycles=%d\n",
		mm.Hits, mm.Misses, mm.Invalidations, mm.SplicedCycles)
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	fmt.Printf("host:  heap-allocs=%d heap-bytes=%d gc-cycles=%d\n",
		ms.Mallocs, ms.TotalAlloc, ms.NumGC)
}

func main() {
	flag.Usage = func() {
		usage()
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() < 1 {
		usage()
		os.Exit(2)
	}
	if flag.Arg(0) != "timeline" &&
		(*checkpointEvery != 0 || *reverseTo != 0 || *checkpointOut != "") {
		fmt.Fprintln(os.Stderr, "microscope: -checkpoint-every/-reverse-to/-checkpoint-out only apply to the timeline subcommand")
		os.Exit(2)
	}
	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microscope:", err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "microscope:", err)
			os.Exit(1)
		}
	}
	err := dispatch(flag.Arg(0))
	if *cpuProfile != "" {
		pprof.StopCPUProfile()
		fmt.Fprintf(os.Stderr, "wrote CPU profile to %s\n", *cpuProfile)
	}
	if *memProfile != "" {
		if werr := writeHeapProfile(*memProfile); werr != nil && err == nil {
			err = werr
		}
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "microscope:", err)
		os.Exit(1)
	}
}

// writeHeapProfile snapshots the heap (after a GC, so the profile shows
// live data rather than collectible garbage) into path.
func writeHeapProfile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	runtime.GC()
	if err := pprof.WriteHeapProfile(f); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote heap profile to %s\n", path)
	return nil
}

// dispatch runs the named subcommand.
func dispatch(cmd string) error {
	var err error
	switch cmd {
	case "table1":
		fmt.Print(sidechan.FormatTable1(sidechan.Table1()))
	case "table2":
		err = runTable2()
	case "timeline":
		err = runTimeline()
	case "execpath":
		err = runExecPath()
	case "generalize":
		err = runGeneralize()
	case "defenses":
		err = runDefenses()
	case "tournament":
		err = runTournament()
	case "denoise":
		err = runDenoise()
	case "baselines":
		err = runBaselines()
	case "walk":
		err = runWalk()
	default:
		usage()
		os.Exit(2)
	}
	return err
}

func usage() {
	fmt.Fprintln(os.Stderr,
		"usage: microscope [-workers N] [-stats] [-cpuprofile f] [-memprofile f] [-sanitize] [-trace out.json] [-metrics] [-json] [-checkpoint-every N] [-reverse-to K] [-checkpoint-out img.gob] <table1|table2|timeline|execpath|generalize|defenses|tournament|denoise|baselines|walk>")
}

// runTable2 exercises the five Table 2 operations against a live victim.
func runTable2() error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	l := victim.LoopSecret([]byte{5, 9})
	if err := rig.InstallVictim(l); err != nil {
		return err
	}
	obs := attachObservers(rig.Core)
	if err := obs.attachSanitizer(rig, l); err != nil {
		return err
	}
	u := rig.Module.User(rig.Victim)
	fmt.Println("Table 2 — MicroScope user API")
	fmt.Printf("provide_replay_handle(%#x)\n", l.Sym("handle"))
	u.ProvideReplayHandle(l.Sym("handle"))
	fmt.Printf("provide_pivot(%#x)\n", l.Sym("pivot"))
	u.ProvidePivot(l.Sym("pivot"))
	fmt.Printf("provide_monitor_addr(%#x)\n", l.Sym("probe"))
	u.ProvideMonitorAddr(l.Sym("probe"))
	fmt.Printf("initiate_page_walk(%#x, 2)\n", l.Sym("probe"))
	if err := u.InitiatePageWalk(l.Sym("probe"), 2); err != nil {
		return err
	}
	fmt.Printf("initiate_page_fault(%#x)\n", l.Sym("handle"))
	u.Recipe().MaxReplays = 5
	if err := u.InitiatePageFault(l.Sym("handle")); err != nil {
		return err
	}
	l.Start(rig.Kernel, 0)
	if err := rig.Run(20_000_000); err != nil {
		return err
	}
	fmt.Printf("-> victim replayed %d times, then released; victim finished: %t\n",
		u.Recipe().Replays(), rig.Core.Context(0).Halted())
	if err := obs.finish(rig.Module); err != nil {
		return err
	}
	printStats(rig.Core)
	return nil
}

// runTimeline reproduces the Fig. 3 interleaving on a live attack.
func runTimeline() error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	l := victim.ControlFlowSecret(true)
	if err := rig.InstallVictim(l); err != nil {
		return err
	}
	obs := attachObservers(rig.Core)
	if err := obs.attachSanitizer(rig, l); err != nil {
		return err
	}
	rec := &microscope.Recipe{
		Name:       "timeline",
		Victim:     rig.Victim,
		Handle:     l.Sym("handle"),
		MaxReplays: 4,
	}
	if err := rig.Module.Install(rec); err != nil {
		return err
	}
	l.Start(rig.Kernel, 0)
	checkpoints, err := runCheckpointed(rig, 10_000_000)
	if err != nil {
		return err
	}
	fmt.Println("Figure 3 — replayer/victim timeline (cycles are simulated)")
	fmt.Print(microscope.FormatTimeline(rig.Module.Timeline()))
	if err := obs.finish(rig.Module); err != nil {
		return err
	}
	printStats(rig.Core)
	if *reverseTo > 0 {
		if err := reverseStep(rig, checkpoints, *reverseTo); err != nil {
			return err
		}
	}
	if *checkpointOut != "" {
		if err := writeCheckpoint(rig, *checkpointOut); err != nil {
			return err
		}
	}
	return nil
}

// cycleCheckpoint is one periodic whole-machine checkpoint.
type cycleCheckpoint struct {
	Cycle uint64
	CP    *experiments.Checkpoint
}

// runCheckpointed runs the rig to completion within budget. With
// -checkpoint-every N it runs in N-cycle chunks, snapshotting the whole
// machine after each (plus a cycle-0 baseline); the chunked run is
// bit-identical to an unchunked one (Run resumes exactly where it
// stopped, and taking a snapshot does not perturb machine state).
func runCheckpointed(rig *experiments.Rig, budget uint64) ([]cycleCheckpoint, error) {
	every := *checkpointEvery
	if every == 0 {
		return nil, rig.Run(budget)
	}
	var cps []cycleCheckpoint
	take := func() error {
		cp, err := rig.Checkpoint()
		if err != nil {
			return err
		}
		cps = append(cps, cycleCheckpoint{Cycle: rig.Core.Cycle(), CP: cp})
		return nil
	}
	if err := take(); err != nil {
		return nil, err
	}
	spent := uint64(0)
	for !rig.Core.Halted() && spent < budget {
		n := every
		if n > budget-spent {
			n = budget - spent
		}
		spent += rig.Core.Run(n)
		if err := take(); err != nil {
			return nil, err
		}
	}
	if !rig.Core.Halted() {
		return nil, fmt.Errorf("run exceeded %d cycles", budget)
	}
	fmt.Printf("(%d checkpoints taken, every %d cycles)\n", len(cps), every)
	return cps, nil
}

// reverseStep restores the nearest checkpoint at or below the target
// cycle and deterministically re-runs forward to it — the "step
// backwards to cycle k-1" debugging move a forward-only simulator
// cannot otherwise make.
func reverseStep(rig *experiments.Rig, cps []cycleCheckpoint, target uint64) error {
	var best *cycleCheckpoint
	for i := range cps {
		if cps[i].Cycle <= target && (best == nil || cps[i].Cycle > best.Cycle) {
			best = &cps[i]
		}
	}
	if best == nil {
		return fmt.Errorf("no checkpoint at or below cycle %d (use -checkpoint-every)", target)
	}
	if err := rig.Restore(best.CP); err != nil {
		return err
	}
	if target > best.Cycle {
		rig.Core.Run(target - best.Cycle)
	}
	fmt.Printf("\n-- reverse-step: restored cycle-%d checkpoint, re-ran to cycle %d --\n",
		best.Cycle, rig.Core.Cycle())
	for i := 0; i < rig.Core.Contexts(); i++ {
		ctx := rig.Core.Context(i)
		if ctx.Program() == nil {
			continue
		}
		s := ctx.Stats()
		fmt.Printf("ctx%d: pc=%d halted=%t retired=%d faults=%d\n",
			i, ctx.PC(), ctx.Halted(), s.Retired, s.PageFaults)
	}
	return nil
}

// writeCheckpoint snapshots the rig as it stands and writes the gob
// image tools/snapdiff consumes.
func writeCheckpoint(rig *experiments.Rig, path string) error {
	cp, err := rig.Checkpoint()
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := snapshot.Encode(f, cp.Machine); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("wrote machine snapshot to %s (compare two with tools/snapdiff)\n", path)
	return nil
}

// runExecPath narrates the Fig. 9 execution path of a single intercepted
// fault.
func runExecPath() error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	l := victim.ControlFlowSecret(false)
	if err := rig.InstallVictim(l); err != nil {
		return err
	}
	obs := attachObservers(rig.Core)
	if err := obs.attachSanitizer(rig, l); err != nil {
		return err
	}
	steps := []string{}
	rec := &microscope.Recipe{
		Name:       "execpath",
		Victim:     rig.Victim,
		Handle:     l.Sym("handle"),
		MaxReplays: 1,
	}
	rec.OnReplay = func(ev microscope.Event) microscope.Decision {
		steps = append(steps,
			"4. trampoline redirects the fault to the MicroScope module",
			fmt.Sprintf("5. module inspects PTE under attack (replay %d); may flip present bits", ev.Replays),
		)
		return microscope.Release
	}
	if err := rig.Module.Install(rec); err != nil {
		return err
	}
	l.Start(rig.Kernel, 0)
	if err := rig.Run(10_000_000); err != nil {
		return err
	}
	fmt.Println("Figure 9 — execution path of a MicroScope attack")
	fmt.Println("1. application issues the replay-handle access (virtual address)")
	fmt.Println("2. MMU raises a page fault; control enters the OS")
	fmt.Println("3. page-fault handler classifies the fault (present bit clear)")
	for _, s := range steps {
		fmt.Println(s)
	}
	fmt.Println("6. page-fault handler completes")
	fmt.Printf("7. control returns to the application (victim finished: %t)\n",
		rig.Core.Context(0).Halted())
	if err := obs.finish(rig.Module); err != nil {
		return err
	}
	printStats(rig.Core)
	return nil
}

// runGeneralize runs the three Fig. 12 replay-handle mechanisms.
func runGeneralize() error {
	fmt.Println("Figure 12 — generalized microarchitectural replay attacks")
	pf, err := replay.RunPageFaultHandle(10)
	if err != nil {
		return err
	}
	tsx, err := replay.RunTSXAbortHandle(10, false)
	if err != nil {
		return err
	}
	tsxFenced, err := replay.RunTSXAbortHandle(10, true)
	if err != nil {
		return err
	}
	bp, err := replay.RunMispredictHandle()
	if err != nil {
		return err
	}
	fmt.Printf("%-18s %8s %8s %10s\n", "handle", "replays", "leaked", "unbounded")
	for _, r := range []*replay.Result{pf, tsx, bp} {
		fmt.Printf("%-18s %8d %8t %10t\n", r.Kind, r.Replays, r.Leaked, r.Unbound)
	}
	fmt.Printf("%-18s %8d %8t %10s  (fence does NOT stop TSX replays)\n",
		"tsx-abort+fence", tsxFenced.Replays, tsxFenced.Leaked, "true")

	fmt.Println("\n§7.2 — RDRAND bias (integrity attack)")
	for _, fenced := range []bool{false, true} {
		r, err := replay.RunRDRANDBias(1, 100, fenced)
		if err != nil {
			return err
		}
		fmt.Printf("fenced=%-5t observed=%-5t biased=%-5t windows=%d finalBit=%d\n",
			fenced, r.Observed, r.Achieved, r.Windows, r.FinalLowBit)
	}
	return nil
}

// runDefenses evaluates the §8 countermeasures.
func runDefenses() error {
	fmt.Println("§8 — countermeasure evaluation")
	ts, err := defense.RunTSGX(10)
	if err != nil {
		return err
	}
	fmt.Printf("T-SGX (N=%d):      OS-visible faults=%d, leaks observed=%d, enclave terminated=%t\n",
		ts.Threshold, ts.OSVisibleFaults, ts.LeakObservations, ts.VictimTerminated)

	dv, err := defense.RunDejaVu(10_000, 5, 5_000)
	if err != nil {
		return err
	}
	fmt.Printf("Deja Vu (naive):   elapsed=%d vs threshold=%d -> detected=%t (leaked=%t)\n",
		dv.Elapsed, dv.Threshold, dv.Detected, dv.Leaked)
	dv2, err := defense.RunDejaVu(10_000, 2, 1_200)
	if err != nil {
		return err
	}
	fmt.Printf("Deja Vu (masked):  elapsed=%d vs threshold=%d -> detected=%t (leaked=%t)\n",
		dv2.Elapsed, dv2.Threshold, dv2.Detected, dv2.Leaked)

	po, err := defense.RunPFOblivious()
	if err != nil {
		return err
	}
	fmt.Printf("PF-obliviousness:  page traces equal=%t, handle candidates=%d, secret recovered=%t\n",
		po.PageTraceEqual, po.HandleCandidates, po.SecretRecovered)
	return nil
}

// runTournament runs the full defense tournament: every builtin victim
// crossed with every replay-handle class and every roster defense, forked
// from per-victim warm checkpoints. Output is the rendered grids (or the
// canonical JSON under -json), byte-identical for any -workers value.
func runTournament() error {
	m, err := experiments.RunTournament(experiments.TournamentOptions{Workers: *workers})
	if err != nil {
		return err
	}
	if *jsonOut {
		b, err := m.JSON()
		if err != nil {
			return err
		}
		fmt.Print(string(b))
		return nil
	}
	fmt.Print(m.Render())
	return nil
}

// runBaselines runs the §2.4 prior attacks for comparison.
func runBaselines() error {
	fmt.Println("§2.4 baselines — the attacks MicroScope improves on")
	cc, err := baseline.RunControlledChannel(true)
	if err != nil {
		return err
	}
	fmt.Printf("controlled channel [60]: page secret recovered=%t, line secret visible=%t (page granularity)\n",
		cc.PageSecretCorrect, cc.LineSecretVisible)
	spm, err := baseline.RunSPM(true)
	if err != nil {
		return err
	}
	fmt.Printf("sneaky page monitoring [58]: page secret recovered=%t, victim saw faults=%t\n",
		spm.PageSecretCorrect, spm.VictimObservedFault)
	pp, err := baseline.RunPrimeProbe([]byte("0123456789abcdef"), []byte("attack at dawn!!"), 0.2, 150, 7, *workers)
	if err != nil {
		return err
	}
	fmt.Printf("multi-run prime+probe [9,18]: single noisy trace correct=%t, traces to stability=%d, per-round resolution=%t\n",
		pp.SingleRunObserved == pp.UnionTruth, pp.TracesTo99, pp.PerRoundResolved)
	fmt.Println("(compare: MicroScope recovers exact per-round sets in ONE logical run — cmd/aesattack)")
	return nil
}

// runWalk prints the Fig. 2 page-table walk of an address, with the cache
// level serving each level and the resulting walk latency under the
// §4.1.2 tuning extremes.
func runWalk() error {
	rig, err := experiments.NewRig(cpu.DefaultConfig())
	if err != nil {
		return err
	}
	l := victim.ControlFlowSecret(false)
	if err := rig.InstallVictim(l); err != nil {
		return err
	}
	va := l.Sym("handle")
	steps, err := rig.Module.SoftWalk(rig.Victim, va)
	if err != nil {
		return err
	}
	fmt.Printf("Figure 2 — page-table walk for va=%#x (CR3 ppn=%#x)\n\n",
		va, rig.Victim.AddressSpace().Root())
	for _, s := range steps {
		fmt.Printf("%-4s entry at pa=%#x  ->  %s\n", s.Level, s.EntryAddr, s.Entry)
	}
	fmt.Println("\nwalk-duration tuning (§4.1.2): victim-observed fault delay by levels flushed")
	for levels := 1; levels <= 4; levels++ {
		r2, err := experiments.NewRig(cpu.DefaultConfig())
		if err != nil {
			return err
		}
		l2 := victim.ControlFlowSecret(false)
		if err := r2.InstallVictim(l2); err != nil {
			return err
		}
		var faultCycle uint64
		rec := &microscope.Recipe{
			Name: "walkdemo", Victim: r2.Victim, Handle: l2.Sym("handle"),
			WalkLevels: levels, MaxReplays: 1,
		}
		rec.OnReplay = func(ev microscope.Event) microscope.Decision {
			faultCycle = ev.Cycle
			return microscope.Release
		}
		if err := r2.Module.Install(rec); err != nil {
			return err
		}
		start := r2.Core.Cycle()
		l2.Start(r2.Kernel, 0)
		if err := r2.Run(10_000_000); err != nil {
			return err
		}
		fmt.Printf("  %d level(s) from memory: fault delivered after %d cycles\n",
			levels, faultCycle-start)
		printStats(r2.Core)
	}
	return nil
}

// runDenoise prints the replays-to-confidence curve and the channel's
// information-theoretic quality.
func runDenoise() error {
	fmt.Println("denoising — majority-vote confidence vs replay count")
	for _, secret := range []bool{false, true} {
		res, err := experiments.RunDenoise(secret, 15)
		if err != nil {
			return err
		}
		rep := sidechan.AnalyzeReplayChannel(res.Observations, res.Truth)
		fmt.Printf("secret=%-5t verdict=%-5t replays-to-90%%=%d observations=%v\n",
			secret, res.Verdict, res.ReplaysTo90, res.Observations)
		fmt.Printf("            error-rate=%.2f bits/replay=%.2f replays-for-1e-3=%d\n",
			rep.ErrorRate, rep.BitsPerReplay, rep.ReplaysFor1e3)
	}
	return nil
}
