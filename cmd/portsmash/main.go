// Command portsmash reproduces Figure 10 of the paper: the MicroScope'd
// port-contention attack. A monitor thread on the victim core's sibling
// SMT context times its own floating-point divisions while the victim —
// which executes either two multiplies or two divides depending on a
// secret branch, once, with no loop — is replayed on a page-faulting
// load. The output is the pair of latency distributions (Fig. 10a/10b)
// and the over-threshold counts that reveal the secret.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/analysis/stats"
	"microscope/attack/experiments"
)

func main() {
	cfg := experiments.DefaultFig10Config()
	flag.IntVar(&cfg.Samples, "samples", cfg.Samples, "monitor measurements per side")
	flag.IntVar(&cfg.Cont, "cont", cfg.Cont, "divisions per measurement")
	handler := flag.Uint64("handler", cfg.HandlerLatency, "replayer handler latency (cycles)")
	flag.IntVar(&cfg.WalkLevels, "walk", cfg.WalkLevels, "page-table levels served from memory (1-4)")
	hist := flag.Bool("hist", true, "print latency histograms")
	flag.Parse()
	cfg.HandlerLatency = *handler

	res, err := experiments.RunFig10(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portsmash:", err)
		os.Exit(1)
	}

	fmt.Printf("Figure 10 — port contention attack (%d samples/side)\n\n", cfg.Samples)
	fmt.Printf("victim mul side: %s  (replays: %d, %d cycles)\n",
		stats.Summarize(res.Mul.Samples), res.Mul.Replays, res.Mul.Cycles)
	fmt.Printf("victim div side: %s  (replays: %d, %d cycles)\n\n",
		stats.Summarize(res.Div.Samples), res.Div.Replays, res.Div.Cycles)

	if *hist {
		fmt.Println("Fig. 10a — monitor latencies, victim executes two multiplies:")
		fmt.Println(stats.NewHistogram(res.Mul.Samples, 0, 250, 25).Render(48))
		fmt.Println("Fig. 10b — monitor latencies, victim executes two divides:")
		fmt.Println(stats.NewHistogram(res.Div.Samples, 0, 250, 25).Render(48))
	}

	fmt.Printf("contention threshold (calibrated on mul side): %d cycles\n", res.Threshold)
	fmt.Printf("over threshold: mul side %d, div side %d  (paper: 4 vs 64, 16x)\n",
		res.MulOver, res.DivOver)
	fmt.Printf("separation: %.1fx -> secret branch %s\n", res.SeparationX,
		map[bool]string{true: "DETECTED (div side)", false: "not detected"}[res.SecretDetected()])
}
