// Command portsmash reproduces Figure 10 of the paper: the MicroScope'd
// port-contention attack. A monitor thread on the victim core's sibling
// SMT context times its own floating-point divisions while the victim —
// which executes either two multiplies or two divides depending on a
// secret branch, once, with no loop — is replayed on a page-faulting
// load. The output is the pair of latency distributions (Fig. 10a/10b)
// and the over-threshold counts that reveal the secret.
//
// With -trials N > 1 the whole experiment repeats N times as a parallel
// sweep (per-trial deterministic jitter phases), reporting the merged
// distributions and the detection rate. -workers bounds the goroutines;
// any worker count produces identical output.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/analysis/stats"
	"microscope/attack/experiments"
)

func main() {
	cfg := experiments.DefaultFig10Config()
	flag.IntVar(&cfg.Samples, "samples", cfg.Samples, "monitor measurements per side")
	flag.IntVar(&cfg.Cont, "cont", cfg.Cont, "divisions per measurement")
	handler := flag.Uint64("handler", cfg.HandlerLatency, "replayer handler latency (cycles)")
	flag.IntVar(&cfg.WalkLevels, "walk", cfg.WalkLevels, "page-table levels served from memory (1-4)")
	hist := flag.Bool("hist", true, "print latency histograms")
	trials := flag.Int("trials", 1, "independent repetitions of the full experiment")
	flag.IntVar(&cfg.Workers, "workers", 0,
		"parallel sweep workers (<=0: GOMAXPROCS); results are identical for any value")
	flag.Parse()
	cfg.HandlerLatency = *handler

	if *trials > 1 {
		runSweep(cfg, *trials, *hist)
		return
	}

	res, err := experiments.RunFig10(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portsmash:", err)
		os.Exit(1)
	}

	fmt.Printf("Figure 10 — port contention attack (%d samples/side)\n\n", cfg.Samples)
	fmt.Printf("victim mul side: %s  (replays: %d, %d cycles)\n",
		stats.Summarize(res.Mul.Samples), res.Mul.Replays, res.Mul.Cycles)
	fmt.Printf("victim div side: %s  (replays: %d, %d cycles)\n\n",
		stats.Summarize(res.Div.Samples), res.Div.Replays, res.Div.Cycles)

	if *hist {
		fmt.Println("Fig. 10a — monitor latencies, victim executes two multiplies:")
		printHist(res.Mul.Samples)
		fmt.Println("Fig. 10b — monitor latencies, victim executes two divides:")
		printHist(res.Div.Samples)
	}

	fmt.Printf("contention threshold (calibrated on mul side): %d cycles\n", res.Threshold)
	fmt.Printf("over threshold: mul side %d, div side %d  (paper: 4 vs 64, 16x)\n",
		res.MulOver, res.DivOver)
	fmt.Printf("separation: %.1fx -> secret branch %s\n", res.SeparationX,
		map[bool]string{true: "DETECTED (div side)", false: "not detected"}[res.SecretDetected()])
}

// runSweep repeats the experiment as a parallel sweep and prints the
// merged picture.
func runSweep(cfg experiments.Fig10Config, trials int, hist bool) {
	res, err := experiments.RunFig10Sweep(cfg, trials)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portsmash:", err)
		os.Exit(1)
	}
	fmt.Printf("Figure 10 sweep — %d trials × %d samples/side (workers=%d)\n\n",
		trials, cfg.Samples, cfg.Workers)
	fmt.Printf("merged mul side: %s\n", res.Mul)
	fmt.Printf("merged div side: %s\n\n", res.Div)
	if hist {
		var all []uint64
		for _, r := range res.Trials {
			all = append(all, r.Div.Samples...)
		}
		fmt.Println("merged div-side latencies:")
		printHist(all)
	}
	for i, r := range res.Trials {
		fmt.Printf("trial %2d: threshold=%3d over mul/div=%3d/%3d separation=%5.1fx detected=%t\n",
			i, r.Threshold, r.MulOver, r.DivOver, r.SeparationX, r.SecretDetected())
	}
	fmt.Printf("\nsecret detected in %d/%d trials; separation %s\n",
		res.Detected, trials, res.Separation)
}

func printHist(xs []uint64) {
	h, err := stats.NewHistogram(xs, 0, 250, 25)
	if err != nil {
		fmt.Fprintln(os.Stderr, "portsmash: histogram:", err)
		return
	}
	fmt.Println(h.Render(48))
}
