// Command snapdiff decodes two machine-snapshot images (the gob files
// written by `microscope -checkpoint-out` or sim/snapshot.Encode) and
// diffs them field by field: architectural registers, ROB entries,
// cache and TLB contents, kernel tables, differing physical-memory
// ranges, module replay state and the nondeterministic-input record
// logs (RDRAND draws, handler decisions). The first differing record-log
// entry pinpoints where two supposedly identical runs diverged.
//
// Usage:
//
//	go run ./tools/snapdiff a.gob b.gob
//
// Exit status: 0 when the snapshots are identical, 1 when they differ,
// 2 on usage or decode errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"microscope/sim/snapshot"
)

func main() {
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: snapdiff <a.gob> <b.gob>")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() != 2 {
		flag.Usage()
		os.Exit(2)
	}
	a, err := load(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	b, err := load(flag.Arg(1))
	if err != nil {
		fatal(err)
	}
	diffs := snapshot.Diff(a, b)
	if len(diffs) == 0 {
		fmt.Printf("snapshots identical (%d bytes of physical memory)\n", len(a.Phys.Data))
		return
	}
	for _, d := range diffs {
		fmt.Println(d)
	}
	os.Exit(1)
}

func load(path string) (*snapshot.Machine, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	m, err := snapshot.Decode(f)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "snapdiff:", err)
	os.Exit(2)
}
