package main

import (
	"os"
	"path/filepath"
	"testing"

	"microscope/sim/cpu"
	"microscope/sim/kernel"
	"microscope/sim/mem"
	"microscope/sim/snapshot"
)

func writeSnap(t *testing.T, path string, mutate func(*snapshot.Machine)) {
	t.Helper()
	phys := mem.NewPhysMem(4 << 20)
	core := cpu.NewCore(cpu.DefaultConfig(), phys)
	k := kernel.New(kernel.DefaultConfig(), phys, core)
	p, err := k.NewProcess("victim")
	if err != nil {
		t.Fatal(err)
	}
	k.Schedule(0, p)
	m, err := snapshot.Capture(phys, core, k)
	if err != nil {
		t.Fatal(err)
	}
	if mutate != nil {
		mutate(m)
	}
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := snapshot.Encode(f, m); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestLoadAndDiff(t *testing.T) {
	dir := t.TempDir()
	aPath := filepath.Join(dir, "a.gob")
	bPath := filepath.Join(dir, "b.gob")
	cPath := filepath.Join(dir, "c.gob")
	writeSnap(t, aPath, nil)
	writeSnap(t, bPath, nil)
	writeSnap(t, cPath, func(m *snapshot.Machine) { m.Core.Cycle = 123 })

	a, err := load(aPath)
	if err != nil {
		t.Fatal(err)
	}
	b, err := load(bPath)
	if err != nil {
		t.Fatal(err)
	}
	c, err := load(cPath)
	if err != nil {
		t.Fatal(err)
	}
	if diffs := snapshot.Diff(a, b); len(diffs) != 0 {
		t.Errorf("identical machines diff: %v", diffs)
	}
	if diffs := snapshot.Diff(a, c); len(diffs) == 0 {
		t.Error("mutated machine diffs clean")
	}
	if _, err := load(filepath.Join(dir, "missing.gob")); err == nil {
		t.Error("load of missing file succeeded")
	}
}
