package lint

// The snapcover analyzer: snapshot coverage. For every struct type in
// the package that carries a Snapshot()/Restore() pair (Snap()/Restore()
// also counts — sim/sanitizer uses the short name), every field must be
// reachable from the pair's same-package call closure — i.e. actually
// read into the snapshot image or written back by the restore — or
// carry an explicit //simlint:snapexempt <reason> comment.
//
// This is the static guard for the checkpoint/restore bit-identity
// contract (PR 6): when a later PR adds a field to cpu.Core,
// mem.PhysMem, kernel.Kernel or any other snapshotted structure and
// forgets to serialize it, the differential tests only catch the
// omission if the field happens to perturb a golden run. snapcover
// catches it at lint time, unconditionally, and forces forgotten-on-
// purpose fields (host-side wiring like hook closures and back-
// pointers) to say so in writing.
//
// Coverage is computed over the pair's call closure, not just the two
// method bodies: Core.Snapshot serializes contexts through snapContext,
// kernels serialize processes through helpers — any same-package
// function or method reachable from Snapshot/Restore counts. A field
// reference anywhere in that closure (read or write) marks the field
// covered; the analyzer does not distinguish the two because restore
// paths frequently rebuild a field from derived data rather than
// assigning it verbatim.

import (
	"go/ast"
	"go/token"
	"go/types"
)

func analyzerSnapcover() *Analyzer {
	return &Analyzer{
		Name: "snapcover",
		Doc:  "every field of a struct with a Snapshot()/Restore() pair must be serialized in the snapshot closure or carry //simlint:snapexempt <reason>",
		Run:  runSnapcover,
	}
}

// snapCaptureNames are the method names that mark a type's capture side
// ("Restore" is always the other half of the pair).
var snapCaptureNames = []string{"Snapshot", "Snap"}

func runSnapcover(u *Unit) []Diagnostic {
	var diags []Diagnostic
	report := reporter(&diags)
	ex := exemptionsFor(u, "snapexempt", report)
	decls := funcDecls(u)

	// Index this package's methods by receiver base type name.
	methods := make(map[string]map[string]*ast.FuncDecl) // type -> method -> decl
	for _, fd := range decls {
		recv := recvBaseName(fd)
		if recv == "" {
			continue
		}
		if methods[recv] == nil {
			methods[recv] = make(map[string]*ast.FuncDecl)
		}
		methods[recv][fd.Name.Name] = fd
	}

	for _, f := range u.SourceFiles() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				checkSnapStruct(u, ts, st, methods[ts.Name.Name], decls, ex, report)
			}
		}
	}
	return diags
}

// snapField pairs one struct field's type object with the AST position
// findings anchor to (the field name, or the type expression for an
// embedded field).
type snapField struct {
	v        *types.Var
	pos      token.Pos
	embedded bool
}

func checkSnapStruct(u *Unit, ts *ast.TypeSpec, st *ast.StructType,
	ms map[string]*ast.FuncDecl, decls map[*types.Func]*ast.FuncDecl,
	ex map[string]exemption, report func(token.Pos, string, ...interface{})) {

	if ms == nil {
		return
	}
	var roots []*ast.FuncDecl
	capture := ""
	for _, name := range snapCaptureNames {
		if fd, ok := ms[name]; ok {
			capture = name
			roots = append(roots, fd)
			break
		}
	}
	restore, hasRestore := ms["Restore"]
	if capture == "" || !hasRestore {
		return
	}
	roots = append(roots, restore)

	// Walk the AST field list and the types.Struct layout in parallel:
	// each unnamed (embedded) entry consumes one types field, each named
	// entry one per name. This resolves embedded fields' objects without
	// relying on position heuristics.
	tn, ok := u.Info.Defs[ts.Name].(*types.TypeName)
	if !ok {
		return
	}
	s, ok := tn.Type().Underlying().(*types.Struct)
	if !ok {
		return
	}
	var fields []snapField
	idx := 0
	for _, fl := range st.Fields.List {
		if len(fl.Names) == 0 {
			if idx < s.NumFields() {
				fields = append(fields, snapField{s.Field(idx), fl.Type.Pos(), true})
			}
			idx++
			continue
		}
		for _, name := range fl.Names {
			if idx < s.NumFields() {
				fields = append(fields, snapField{s.Field(idx), name.Pos(), false})
			}
			idx++
		}
	}
	if len(fields) == 0 {
		return
	}
	fieldSet := make(map[*types.Var]bool, len(fields))
	for _, fe := range fields {
		fieldSet[fe.v] = true
	}

	closure := callClosure(u, decls, roots)
	covered := make(map[*types.Var]bool)
	for fd := range closure {
		ast.Inspect(fd, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			if seln, ok := u.Info.Selections[sel]; ok {
				if v, ok := seln.Obj().(*types.Var); ok && fieldSet[v] {
					covered[v] = true
				}
			}
			return true
		})
	}

	for _, fe := range fields {
		if covered[fe.v] || exempted(u, ex, fe.pos) {
			continue
		}
		kind := "field"
		if fe.embedded {
			kind = "embedded field"
		}
		report(fe.pos,
			"snapshot coverage: %s %s.%s is not serialized by %s/Restore; a checkpointed run would silently diverge after restore — serialize it or add //simlint:snapexempt <reason>",
			kind, ts.Name.Name, fe.v.Name(), capture)
	}
}
