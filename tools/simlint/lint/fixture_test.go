package lint

// The want-comment fixture harness, generalized from the original
// tools/determlint tests to cover all five analyzers: typecheck a
// testdata/src/<name> package under the import path <name>, run one
// analyzer, and compare its diagnostics against the `// want` comments
// in the sources (each holds a regexp, backquoted or double-quoted,
// that must match the diagnostic reported on its line).

import (
	"encoding/json"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

// loadFixtureUnit typechecks testdata/src/<path> under the import path
// <path> (the manifests carry permanent fixture entries under these
// paths, so manifest-driven analyzers exercise their real lookup).
func loadFixtureUnit(t *testing.T, path string) *Unit {
	t.Helper()
	dir := filepath.Join("testdata", "src", path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := newInfo()
	tc := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tc.Check(path, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", path, err)
	}
	return &Unit{Fset: fset, Files: files, Info: info, Pkg: pkg, Path: path}
}

// unitFromSource typechecks one in-memory file as package path.
func unitFromSource(t *testing.T, path, src string) *Unit {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, path+".go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	tc := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := tc.Check(path, fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatalf("typechecking synthetic package %s: %v", path, err)
	}
	return &Unit{Fset: fset, Files: []*ast.File{f}, Info: info, Pkg: pkg, Path: path}
}

// collectWants maps file:line to the expected-diagnostic regexp there.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat[0] == '"' {
					var err error
					if pat, err = strconv.Unquote(pat); err != nil {
						t.Fatalf("bad want pattern %s: %v", m[1], err)
					}
				} else {
					pat = pat[1 : len(pat)-1]
				}
				pos := fset.Position(c.Pos())
				wants[posKey(pos.Filename, pos.Line)] = regexp.MustCompile(pat)
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

// testFixture runs one analyzer over one fixture package and holds its
// diagnostics to the fixture's want comments, both directions.
func testFixture(t *testing.T, analyzer, path string) {
	t.Helper()
	a := ByName(analyzer)
	if a == nil {
		t.Fatalf("no analyzer %q", analyzer)
	}
	u := loadFixtureUnit(t, path)
	wants := collectWants(t, u.Fset, u.Files)
	if len(wants) == 0 {
		t.Fatalf("fixture %s has no want comments", path)
	}

	got := make(map[string]string)
	for _, d := range Run(u, []*Analyzer{a}) {
		pos := u.Fset.Position(d.Pos)
		key := posKey(pos.Filename, pos.Line)
		if prev, dup := got[key]; dup {
			t.Errorf("%s: two diagnostics on one line: %q and %q", key, prev, d.Msg)
		}
		got[key] = d.Msg
	}

	for key, re := range wants {
		msg, ok := got[key]
		if !ok {
			t.Errorf("%s: want diagnostic matching %q, got none", key, re)
			continue
		}
		if !re.MatchString(msg) {
			t.Errorf("%s: diagnostic %q does not match %q", key, msg, re)
		}
	}
	for key, msg := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic %q", key, msg)
		}
	}
}

func TestDeterminismFixture(t *testing.T) { testFixture(t, "determinism", "determ") }
func TestSnapcoverFixture(t *testing.T)   { testFixture(t, "snapcover", "snapcover") }
func TestMemoinvalFixture(t *testing.T)   { testFixture(t, "memoinval", "memoinval") }
func TestEnumtotalFixture(t *testing.T)   { testFixture(t, "enumtotal", "enumtotal") }
func TestHookpairFixture(t *testing.T)    { testFixture(t, "hookpair", "hookpair") }

// The approved worker-pool package may use raw go statements: the same
// source that is flagged under any other import path must come back
// clean when typechecked as microscope/analysis/sweep.
func TestGoroutineExemption(t *testing.T) {
	const src = `package sweep

func fanOut(jobs []func()) {
	for _, j := range jobs {
		go j()
	}
}
`
	det := []*Analyzer{ByName("determinism")}
	if diags := Run(unitFromSource(t, "microscope/analysis/sweep", src), det); len(diags) != 0 {
		t.Errorf("worker-pool package flagged: %v", diags)
	}
	if diags := Run(unitFromSource(t, "microscope/attack/experiments", src), det); len(diags) != 1 {
		t.Errorf("non-pool package: got %d diagnostics, want 1", len(diags))
	}
}

// A reasonless exemption suppresses nothing and is itself a finding
// from the owning analyzer.
func TestExemptionReasonMandatory(t *testing.T) {
	const src = `package x

type T struct {
	//simlint:snapexempt
	a int
	b int
}

func (t *T) Snapshot() int { return t.b }
func (t *T) Restore(v int) { t.b = v }
`
	diags := Run(unitFromSource(t, "x", src), []*Analyzer{ByName("snapcover")})
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics, want 2 (missing reason + uncovered field): %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Msg, "missing its mandatory reason") {
		t.Errorf("first diagnostic = %q, want missing-reason", diags[0].Msg)
	}
	if !strings.Contains(diags[1].Msg, "field T.a is not serialized") {
		t.Errorf("second diagnostic = %q, want uncovered field T.a", diags[1].Msg)
	}
}

// A typo'd exemption kind silently disables nothing — the determinism
// analyzer (the base of every gate) flags it.
func TestUnknownExemptKindFlagged(t *testing.T) {
	const src = `package x

//simlint:snapexmpt the typo must be loud
type T struct{ a int }
`
	diags := Run(unitFromSource(t, "x", src), []*Analyzer{ByName("determinism")})
	if len(diags) != 1 || !strings.Contains(diags[0].Msg, "unknown simlint directive") {
		t.Fatalf("got %v, want one unknown-directive diagnostic", diags)
	}
}

// TestVetCfgSmoke drives the cmd/go vet protocol end to end for every
// analyzer: a real vet.cfg per fixture package (the fixtures import
// nothing, so no export data is needed), findings counted, facts file
// written. Also covers VetxOnly mode and config failure modes.
func TestVetCfgSmoke(t *testing.T) {
	writeCfg := func(t *testing.T, cfg UnitConfig) string {
		t.Helper()
		data, err := json.Marshal(cfg)
		if err != nil {
			t.Fatal(err)
		}
		p := filepath.Join(t.TempDir(), "vet.cfg")
		if err := os.WriteFile(p, data, 0o666); err != nil {
			t.Fatal(err)
		}
		return p
	}
	fixtureFiles := func(t *testing.T, path string) []string {
		t.Helper()
		dir, err := filepath.Abs(filepath.Join("testdata", "src", path))
		if err != nil {
			t.Fatal(err)
		}
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range entries {
			if strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
				out = append(out, filepath.Join(dir, e.Name()))
			}
		}
		return out
	}

	cases := []struct {
		analyzer string
		path     string
		findings int
	}{
		{"snapcover", "snapcover", 2},
		{"memoinval", "memoinval", 2},
		{"enumtotal", "enumtotal", 1},
		{"hookpair", "hookpair", 3},
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			facts := filepath.Join(t.TempDir(), "facts.vetx")
			cfgPath := writeCfg(t, UnitConfig{
				ID:         tc.path,
				Compiler:   "gc",
				ImportPath: tc.path,
				GoFiles:    fixtureFiles(t, tc.path),
				VetxOutput: facts,
			})
			diags, err := RunUnit(cfgPath, []*Analyzer{ByName(tc.analyzer)})
			if err != nil {
				t.Fatal(err)
			}
			if len(diags) != tc.findings {
				t.Errorf("findings = %d, want %d: %v", len(diags), tc.findings, diags)
			}
			if _, err := os.Stat(facts); err != nil {
				t.Errorf("facts file not written: %v", err)
			}
		})
	}

	t.Run("determinism", func(t *testing.T) {
		// The determ fixture imports stdlib (no export data here), so the
		// determinism smoke drives a synthetic import-free unit instead.
		dir := t.TempDir()
		src := filepath.Join(dir, "pool.go")
		if err := os.WriteFile(src, []byte("package smoke\n\nfunc f(fns []func()) {\n\tfor _, fn := range fns {\n\t\tgo fn()\n\t}\n}\n"), 0o666); err != nil {
			t.Fatal(err)
		}
		cfgPath := writeCfg(t, UnitConfig{
			ID: "smoke", Compiler: "gc", ImportPath: "smoke",
			GoFiles: []string{src}, VetxOutput: filepath.Join(dir, "facts.vetx"),
		})
		diags, err := RunUnit(cfgPath, []*Analyzer{ByName("determinism")})
		if err != nil {
			t.Fatal(err)
		}
		if len(diags) != 1 || !strings.Contains(diags[0].Msg, "goroutine") {
			t.Errorf("got %v, want one goroutine diagnostic", diags)
		}
	})

	t.Run("vetxonly", func(t *testing.T) {
		facts := filepath.Join(t.TempDir(), "facts.vetx")
		cfgPath := writeCfg(t, UnitConfig{ID: "dep", VetxOnly: true, VetxOutput: facts})
		diags, err := RunUnit(cfgPath, All())
		if err != nil || len(diags) != 0 {
			t.Fatalf("VetxOnly: diags=%v err=%v", diags, err)
		}
		if _, err := os.Stat(facts); err != nil {
			t.Errorf("VetxOnly did not write the facts file: %v", err)
		}
	})

	t.Run("badconfig", func(t *testing.T) {
		if _, err := RunUnit(filepath.Join(t.TempDir(), "missing.cfg"), All()); err == nil {
			t.Error("missing config accepted")
		}
		bad := filepath.Join(t.TempDir(), "bad.cfg")
		if err := os.WriteFile(bad, []byte("{"), 0o666); err != nil {
			t.Fatal(err)
		}
		if _, err := RunUnit(bad, All()); err == nil {
			t.Error("malformed config accepted")
		}
	})
}

// The analyzer registry itself: canonical order, lookup, flag defs.
func TestRegistry(t *testing.T) {
	names := []string{"determinism", "snapcover", "memoinval", "enumtotal", "hookpair"}
	all := All()
	if len(all) != len(names) {
		t.Fatalf("All() = %d analyzers, want %d", len(all), len(names))
	}
	for i, want := range names {
		if all[i].Name != want {
			t.Errorf("All()[%d] = %s, want %s", i, all[i].Name, want)
		}
		if ByName(want) == nil {
			t.Errorf("ByName(%q) = nil", want)
		}
		if all[i].Doc == "" {
			t.Errorf("%s has no doc", want)
		}
	}
	if ByName("nosuch") != nil {
		t.Error("ByName accepted an unknown name")
	}

	var defs []struct {
		Name string
		Bool bool
	}
	if err := json.Unmarshal([]byte(VetFlagDefs()), &defs); err != nil {
		t.Fatalf("VetFlagDefs is not JSON: %v", err)
	}
	if len(defs) != len(names) {
		t.Errorf("VetFlagDefs lists %d flags, want %d", len(defs), len(names))
	}
	for i, d := range defs {
		if d.Name != names[i] || !d.Bool {
			t.Errorf("flag def %d = %+v, want Bool flag %s", i, d, names[i])
		}
	}
}
