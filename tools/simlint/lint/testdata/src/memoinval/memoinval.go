// The memoinval fixture: a miniature replay-memo owner. The fixture
// manifest entry (manifest.go) declares Machine.clock and Machine.seed
// as fingerprint inputs and Flush as the invalidation path; the
// harness typechecks this package under the import path "memoinval".
package memoinval

// Machine mimics cpu.Core: clock and seed feed the (imaginary) window
// fingerprint; memo is the cache the invalidator drops.
type Machine struct {
	clock uint64
	seed  uint64
	memo  map[uint64]uint64
}

// Flush is the memo-invalidation path.
func (m *Machine) Flush() { m.memo = nil }

// Tick writes a fingerprint input and invalidates directly: clean.
func (m *Machine) Tick() {
	m.clock++
	m.Flush()
}

// Reseed writes through one helper and invalidates through another:
// the call-closure walk must see both.
func (m *Machine) Reseed(v uint64) {
	m.setSeed(v)
	m.drop()
}

func (m *Machine) setSeed(v uint64) { m.seed = v }
func (m *Machine) drop()            { m.Flush() }

// SkipAhead writes a fingerprint input and never invalidates.
func (m *Machine) SkipAhead(n uint64) { // want `memo invalidation: exported method Machine\.SkipAhead writes fingerprint input Machine\.clock`
	m.clock += n
}

// SetSeedRaw is a reviewed exception with a written reason.
//
//simlint:memoexempt fixture: seed is folded into every fingerprint, so the write forces a miss
func (m *Machine) SetSeedRaw(v uint64) { m.seed = v }

// advance is unexported: not an entry point, reachable only through
// exported methods that carry their own obligations.
func (m *Machine) advance() { m.clock++ }

// Stat only reads fingerprint inputs: clean.
func (m *Machine) Stat() uint64 { return m.clock + m.seed }

// Burn reaches a tracked write through the unexported helper chain.
func (m *Machine) Burn() { // want `memo invalidation: exported method Machine\.Burn writes fingerprint input Machine\.clock`
	m.advance()
}
