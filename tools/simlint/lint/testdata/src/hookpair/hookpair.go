// The hookpair fixture: a hook interface (hookManifest entry
// {"hookpair", "Hook"}) and implementations that are complete,
// partial, signature-drifted, delegating, exempted, or innocently
// name-colliding. Typechecked under the import path "hookpair".
package hookpair

// Hook is the fixture hook interface. Reset is deliberately one of the
// stoplisted generic names (hookCommonNames).
type Hook interface {
	OnFetch(pc int)
	OnSquash(n int)
	Reset()
}

// Full implements the complete hook set: clean.
type Full struct {
	fetches, squashes int
}

func (f *Full) OnFetch(pc int) { f.fetches++ }
func (f *Full) OnSquash(n int) { f.squashes += n }
func (f *Full) Reset()         { *f = Full{} }

// Partial handles two of the three hooks.
type Partial struct{} // want `hook completeness: Partial handles OnFetch, OnSquash of the hookpair\.Hook hook set but is missing Reset`

func (p *Partial) OnFetch(pc int) {}
func (p *Partial) OnSquash(n int) {}

// Delegate embeds a full implementation; the promoted methods complete
// the set, and its own override keeps the interface satisfied.
type Delegate struct {
	Full
	overrides int
}

func (d *Delegate) OnSquash(n int) {
	d.overrides++
	d.Full.OnSquash(n)
}

// Drifted declares all three hook names, but OnSquash's signature has
// drifted: the interface assertion fails at runtime.
type Drifted struct{} // want `hook completeness: Drifted declares the full hookpair\.Hook hook set \(OnFetch, OnSquash, Reset\) but does not satisfy the interface`

func (d *Drifted) OnFetch(pc int)   {}
func (d *Drifted) OnSquash(n int64) {}
func (d *Drifted) Reset()           {}

// Lone has a single distinctive hook name: that is evidence of an
// intended (and incomplete) implementation.
type Lone struct{} // want `hook completeness: Lone handles OnFetch of the hookpair\.Hook hook set but is missing OnSquash, Reset`

func (l *Lone) OnFetch(pc int) {}

// Counter overlaps only on Reset, a stoplisted generic name: not
// evidence of an intended Hook implementation, so it is clean.
type Counter struct {
	n int
}

func (c *Counter) Reset() { c.n = 0 }

// Waived is a deliberate partial implementation with a written reason.
//
//simlint:hookexempt fixture: this sampler observes fetches only, by design
type Waived struct{}

func (w *Waived) OnFetch(pc int) {}
func (w *Waived) OnSquash(n int) {}
