// The enumtotal fixture: a closed enum (manifest key "enumtotal.Kind")
// and switches that are total, defaulted, partial, exempted, or
// undecidable. Typechecked under the import path "enumtotal".
package enumtotal

// Kind is the fixture's closed enum.
type Kind int

// Kind values. KindAlias shares KindA's value — covering either name
// covers the value. NumKinds is the sentinel count, typed int, so the
// analyzer never demands a case for it.
const (
	KindA Kind = iota
	KindB
	KindC

	KindAlias = KindA
)

// NumKinds is the open-coded sentinel.
const NumKinds = 3

// Total covers every declared value: clean.
func Total(k Kind) string {
	switch k {
	case KindA:
		return "a"
	case KindB:
		return "b"
	case KindC:
		return "c"
	}
	return ""
}

// Defaulted decides the remainder explicitly: clean.
func Defaulted(k Kind) bool {
	switch k {
	case KindA:
		return true
	default:
		return false
	}
}

// Partial silently ignores two values. The single case names the value
// through its alias: covering KindAlias covers KindA, so only KindB and
// KindC are reported missing.
func Partial(k Kind) bool {
	switch k { // want `enum totality: switch over enumtotal\.Kind does not handle KindB, KindC`
	case KindAlias:
		return true
	}
	return false
}

// Exempt samples deliberately, in writing.
func Exempt(k Kind) bool {
	//simlint:enumexempt fixture: samples only KindA by design
	switch k {
	case KindA:
		return true
	}
	return false
}

// Dynamic has a non-constant case: totality is undecidable, skipped.
func Dynamic(k, other Kind) bool {
	switch k {
	case other:
		return true
	}
	return false
}

// Untyped switches over a plain int, which is not a manifest enum.
func Untyped(v int) bool {
	switch v {
	case 0:
		return true
	}
	return false
}
