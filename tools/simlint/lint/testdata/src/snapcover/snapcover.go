// The snapcover fixture: structs with Snapshot/Restore pairs whose
// fields are covered, forgotten, or exempted. Typechecked under the
// import path "snapcover" by the fixture harness.
package snapcover

// GadgetSnap is the serialized image.
type GadgetSnap struct {
	Ticks uint64
	Tags  []string
}

// Gadget carries a Snapshot/Restore pair: every field must be
// referenced somewhere in the pair's same-package call closure or
// carry a written exemption.
type Gadget struct {
	ticks uint64
	tags  []string
	lost  int    // want `snapshot coverage: field Gadget\.lost is not serialized by Snapshot/Restore`
	hook  func() //simlint:snapexempt host wiring: the owner re-arms the hook after restore
}

func (g *Gadget) Snapshot() *GadgetSnap {
	return &GadgetSnap{Ticks: g.ticks, Tags: g.copyTags()}
}

// copyTags is reached from Snapshot: the tags reference here counts as
// coverage (closure, not just the two method bodies).
func (g *Gadget) copyTags() []string { return append([]string(nil), g.tags...) }

func (g *Gadget) Restore(s *GadgetSnap) {
	g.ticks = s.Ticks
	g.tags = append(g.tags[:0], s.Tags...)
}

// inner is a helper struct with no pair of its own: ignored.
type inner struct {
	n int
}

// Wrap's embedded field is not serialized by the pair.
type Wrap struct {
	inner // want `snapshot coverage: embedded field Wrap\.inner is not serialized by Snapshot/Restore`
	id    int
}

func (w *Wrap) Snapshot() int { return w.id }
func (w *Wrap) Restore(v int) { w.id = v }

// Short uses the Snap() capture name (the sim/sanitizer convention);
// both fields are covered.
type Short struct {
	v uint64
}

func (s *Short) Snap() uint64     { return s.v }
func (s *Short) Restore(v uint64) { s.v = v }

// CaptureOnly has no Restore: not a pair, not checked.
type CaptureOnly struct {
	scratch int
}

func (c *CaptureOnly) Snapshot() int { return c.scratch }
