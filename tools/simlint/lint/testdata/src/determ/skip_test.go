package determ

import "math/rand"

// Test files are exempt: randomized input generation is fine in tests.
func fuzzInput() int {
	return rand.Intn(100)
}
