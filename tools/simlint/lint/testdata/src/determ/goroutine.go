package determ

import "sync"

// Goroutine-discipline fixtures: raw go statements are flagged outside
// the approved analysis/sweep worker pool (this fixture package is not
// it), whether the forked function is named, a literal, or a method.

func forkNamed() {
	go work() // want `goroutine discipline: raw go statement outside the approved`
}

func forkLiteral(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() { // want `route concurrency through the sweep runner`
		defer wg.Done()
		work()
	}()
	wg.Wait()
}

type runner struct{}

func (runner) run() {}

func forkMethod(r runner) {
	go r.run() // want `goroutine discipline`
}

// Calling a function that could spawn internally is fine: the check is
// syntactic over go statements, not interprocedural.
func noFork() {
	work()
}

func work() {}
