package determ

// Fixtures for the envdep check: host- and environment-dependent values
// must not reach output paths.

import (
	"os"
	"runtime"
	"strconv"
)

func envKnob() int {
	v := os.Getenv("TUNING") // want `os\.Getenv makes output depend on the process environment`
	n, _ := strconv.Atoi(v)
	if _, ok := os.LookupEnv("DEBUG"); ok { // want `os\.LookupEnv makes output depend on the process environment`
		n++
	}
	n += len(os.Environ()) // want `os\.Environ makes output depend on the process environment`
	return n
}

func hostWorkers() int {
	return runtime.NumCPU() // want `runtime\.NumCPU varies per machine`
}

func configuredWorkers() int {
	// ok: GOMAXPROCS is set explicitly by the sweep runner, so reading
	// it back reflects configuration, not the host.
	return runtime.GOMAXPROCS(0)
}

func envValueAsRef() func(string) string {
	f := os.Getenv // want `os\.Getenv makes output depend on the process environment`
	return f
}

func unrelatedOsUse() error {
	// ok: file IO is input, not environment sniffing.
	_, err := os.ReadFile("config.json")
	return err
}
