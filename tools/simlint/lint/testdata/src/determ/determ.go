// Package determ is determlint's test fixture. Each "want" comment is a
// regexp the harness matches against the diagnostic reported on that
// line; lines without one must stay clean.
package determ

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"time"
)

func globalRand() int {
	n := rand.Intn(10) // want `global math/rand source`
	rand.Seed(42)      // want `global math/rand source`
	f := rand.Float64  // want `global math/rand source`
	return n + int(f())
}

func seededRand(seed int64) int {
	r := rand.New(rand.NewSource(seed)) // ok: explicit source
	return r.Intn(10)                   // ok: method on the explicit source
}

func wallClock() int64 {
	t := time.Now() // want `time\.Now reads the wall clock`
	return t.Unix() + int64(time.Hour)
}

func mapAppendUnsorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map iteration order reaches output`
	}
	return keys
}

func mapAppendSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sorted below
	}
	sort.Strings(keys)
	return keys
}

func mapAppendSortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // ok: sort.Slice below names keys
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// The collect-into-map-of-slices idiom: the sort lives in a sibling
// loop, which still counts as sorting the accumulator.
func mapOfSlices(labels map[string]int) map[int][]string {
	byIndex := make(map[int][]string)
	for name, idx := range labels {
		byIndex[idx] = append(byIndex[idx], name) // ok: sorted in the next loop
	}
	for idx := range byIndex {
		sort.Strings(byIndex[idx])
	}
	return byIndex
}

func mapPrint(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `map iteration order reaches output`
	}
}

func mapWrite(m map[string]int) string {
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want `map iteration order reaches output`
	}
	return b.String()
}

func mapLocalOnly(m map[string]int) int {
	best := 0
	for _, v := range m {
		parts := []int{}
		parts = append(parts, v) // ok: parts is per-iteration
		if v > best {
			best = v // ok: order-independent reduction
		}
	}
	return best
}

func sliceAppend(xs []int) []int {
	var out []int
	for _, v := range xs {
		out = append(out, v) // ok: slice iteration is ordered
	}
	return out
}
