// Package lint is the simlint analyzer framework: a stdlib-only,
// vet.cfg-compatible multi-analyzer harness for the repository's own
// correctness contracts. Five analyzers share one typechecked view of a
// package:
//
//   - determinism: byte-identical output for identical inputs (the
//     original tools/determlint checks — global math/rand, time.Now,
//     environment reads, map-order-dependent output, goroutine
//     discipline);
//   - snapcover: every struct with a Snapshot()/Restore() pair must
//     serialize every field or exempt it with a written reason, so the
//     checkpoint/restore bit-identity contract cannot rot when a field
//     is added;
//   - memoinval: every exported method on the replay-memo's fingerprint
//     owners (cpu.Core/cpu.Context, per the checked-in manifest derived
//     from sim/cpu/memo.go) that writes fingerprint-input state must
//     call the memo-invalidation path or carry an exemption;
//   - enumtotal: switches over the repo's closed enums (side-channel
//     taxonomy, reconcile classes, verifier verdicts, trace event
//     kinds) must be total — every declared constant, a default, or an
//     exemption;
//   - hookpair: implementations of the simulator's hook interfaces
//     (cpu.Tracer, cpu.ShadowTracker, defense.Defense, ...) must
//     satisfy the full hook set or delegate via embedding; a partial
//     name-match is a wiring bug waiting for a nil-method panic.
//
// Analyzers run over a Unit (one parsed+typechecked package) and return
// position-sorted Diagnostics. The vet-protocol driver (unit.go), the
// standalone module loader (loader.go) and the fixture test harness all
// build Units the same way, so a finding reproduces identically under
// `go vet -vettool`, `bin/simlint ./sim/...` and `go test`.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Msg      string
}

// Unit is one package's worth of analysis input.
type Unit struct {
	Fset  *token.FileSet
	Files []*ast.File
	Info  *types.Info
	Pkg   *types.Package
	// Path is the import path as the build system named it; test
	// variants carry a " [pkg.test]" suffix that PkgPath strips.
	Path string
}

// PkgPath is the unit's import path with cmd/go's test-variant suffix
// ("pkg [pkg.test]") stripped, so manifest keys and package exemptions
// match the package however it was compiled.
func (u *Unit) PkgPath() string {
	if i := strings.Index(u.Path, " ["); i >= 0 {
		return u.Path[:i]
	}
	return u.Path
}

// SourceFiles returns the unit's non-test files. Every analyzer skips
// _test.go: tests may use randomness for input generation, helper
// structs that mimic snapshotted types, and deliberately partial hook
// stubs.
func (u *Unit) SourceFiles() []*ast.File {
	var out []*ast.File
	for _, f := range u.Files {
		if strings.HasSuffix(u.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		out = append(out, f)
	}
	return out
}

// An Analyzer is one named check.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Unit) []Diagnostic
}

// All returns the analyzers in canonical order. The slice is fresh per
// call; callers may filter it.
func All() []*Analyzer {
	return []*Analyzer{
		analyzerDeterminism(),
		analyzerSnapcover(),
		analyzerMemoinval(),
		analyzerEnumtotal(),
		analyzerHookpair(),
	}
}

// ByName returns the analyzer with the given name, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Run executes the given analyzers over the unit and returns all
// findings stamped with their analyzer name, sorted by position then
// analyzer.
func Run(u *Unit, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	for _, a := range analyzers {
		for _, d := range a.Run(u) {
			d.Analyzer = a.Name
			diags = append(diags, d)
		}
	}
	sort.Slice(diags, func(i, j int) bool {
		if diags[i].Pos != diags[j].Pos {
			return diags[i].Pos < diags[j].Pos
		}
		return diags[i].Analyzer < diags[j].Analyzer
	})
	return diags
}

// reporter builds the report closure analyzers append findings with.
func reporter(diags *[]Diagnostic) func(token.Pos, string, ...interface{}) {
	return func(pos token.Pos, format string, args ...interface{}) {
		*diags = append(*diags, Diagnostic{Pos: pos, Msg: fmt.Sprintf(format, args...)})
	}
}

// newInfo allocates the types.Info every Unit builder fills.
func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

// NewInfo is the exported Unit-builder hook for external harnesses
// (the determlint wrapper and tests construct Units directly).
func NewInfo() *types.Info { return newInfo() }

// funcDecls maps each function/method object declared in the unit's
// source files to its declaration, for same-package call-closure walks.
func funcDecls(u *Unit) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range u.SourceFiles() {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			if fn, ok := u.Info.Defs[fd.Name].(*types.Func); ok {
				m[fn] = fd
			}
		}
	}
	return m
}

// callClosure returns the set of function declarations reachable from
// the roots through same-package calls (including method values and
// function references, not just direct calls — passing a method as a
// value reaches it too).
func callClosure(u *Unit, decls map[*types.Func]*ast.FuncDecl, roots []*ast.FuncDecl) map[*ast.FuncDecl]bool {
	seen := make(map[*ast.FuncDecl]bool)
	work := append([]*ast.FuncDecl(nil), roots...)
	for len(work) > 0 {
		fd := work[len(work)-1]
		work = work[:len(work)-1]
		if fd == nil || seen[fd] {
			continue
		}
		seen[fd] = true
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := u.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg() != u.Pkg {
				return true
			}
			if callee, ok := decls[fn]; ok && !seen[callee] {
				work = append(work, callee)
			}
			return true
		})
	}
	return seen
}

// recvBaseName returns the receiver's base type name of a method
// declaration ("" for functions): *Core -> Core.
func recvBaseName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	t := fd.Recv.List[0].Type
	for {
		switch x := t.(type) {
		case *ast.StarExpr:
			t = x.X
		case *ast.ParenExpr:
			t = x.X
		case *ast.IndexExpr: // generic receiver
			t = x.X
		case *ast.Ident:
			return x.Name
		default:
			return ""
		}
	}
}
