package lint

// Machine-readable diagnostics (-json) and the -diff baseline mode.
// CI gates on "no new findings" during incremental adoption: commit a
// baseline (`simlint -json ./... > baseline.json`), then
// `simlint -diff baseline.json current.json` exits 2 only for findings
// absent from the baseline. Diff keys deliberately ignore line/column
// — unrelated edits shift lines, and a finding that merely moved is
// not a new finding.

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"sort"
)

// JSONDiagnostic is the serialized form of one finding.
type JSONDiagnostic struct {
	Analyzer string `json:"analyzer"`
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Message  string `json:"message"`
}

// ToJSON converts findings to their serialized form, with file paths
// relative to root (module root) when possible, sorted.
func ToJSON(fset *token.FileSet, root string, diags []Diagnostic) []JSONDiagnostic {
	out := make([]JSONDiagnostic, 0, len(diags))
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		file := pos.Filename
		if root != "" {
			if rel, err := filepath.Rel(root, file); err == nil && !filepath.IsAbs(rel) &&
				rel != ".." && !hasDotDotPrefix(rel) {
				file = filepath.ToSlash(rel)
			}
		}
		out = append(out, JSONDiagnostic{
			Analyzer: d.Analyzer,
			File:     file,
			Line:     pos.Line,
			Col:      pos.Column,
			Message:  d.Msg,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return out
}

// WriteJSON encodes findings as an indented JSON array. A clean run
// writes [] (not null) so baselines are uniformly arrays.
func WriteJSON(w io.Writer, diags []JSONDiagnostic) error {
	if diags == nil {
		diags = []JSONDiagnostic{}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(diags)
}

// ReadJSONFile loads a findings file written by WriteJSON.
func ReadJSONFile(path string) ([]JSONDiagnostic, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var out []JSONDiagnostic
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", path, err)
	}
	return out, nil
}

// diffKey identifies a finding across line shifts.
func diffKey(d JSONDiagnostic) string {
	return d.Analyzer + "\x00" + d.File + "\x00" + d.Message
}

// Diff returns the findings in cur that do not appear in old (baseline
// mode). Multiplicity counts: a file that grows a second identical
// finding on another line is a new finding.
func Diff(old, cur []JSONDiagnostic) []JSONDiagnostic {
	budget := make(map[string]int, len(old))
	for _, d := range old {
		budget[diffKey(d)]++
	}
	var out []JSONDiagnostic
	for _, d := range cur {
		k := diffKey(d)
		if budget[k] > 0 {
			budget[k]--
			continue
		}
		out = append(out, d)
	}
	return out
}

func hasDotDotPrefix(rel string) bool {
	return rel == ".." || (len(rel) >= 3 && rel[:3] == ".."+string(filepath.Separator))
}
