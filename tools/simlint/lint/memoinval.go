package lint

// The memoinval analyzer: replay-memo invalidation discipline. The
// replay splice cache (PR 8, sim/cpu/memo.go) keys its records on a
// window fingerprint over a fixed set of core/context fields
// (memoFixedDigest) plus lazy first-touch probes of the memory system.
// The probed state re-validates at splice time, but the fixed inputs
// are hashed eagerly — so any exported method that mutates one of them
// between fingerprinting points must either call the memo-invalidation
// path (MemoFlush / memoAbortRecording) or carry a written
// //simlint:memoexempt <reason> explaining why the mutation is safe
// (typically: the field is folded into every fingerprint, so changing
// it forces a miss rather than a stale splice).
//
// The field set is the checked-in memoManifest (manifest.go), pinned to
// memoFixedDigest by the manifest-sync test. Writes are traced through
// the method's same-package call closure: Core.Preempt resets context
// state via helpers, and those helper writes count against the exported
// entry point. Only exported methods are entry points — unexported
// mutators are reachable only through exported ones (or the run loop,
// which fingerprints around them).

import (
	"go/ast"
	"go/token"
	"go/types"
)

func analyzerMemoinval() *Analyzer {
	return &Analyzer{
		Name: "memoinval",
		Doc:  "exported methods writing replay-memo fingerprint inputs (per the memoManifest) must call the memo-invalidation path or carry //simlint:memoexempt <reason>",
		Run:  runMemoinval,
	}
}

func runMemoinval(u *Unit) []Diagnostic {
	var diags []Diagnostic
	report := reporter(&diags)
	manifest, ok := memoManifest[u.PkgPath()]
	if !ok {
		return diags
	}
	ex := exemptionsFor(u, "memoexempt", report)
	invalidators := memoInvalidators[u.PkgPath()]
	decls := funcDecls(u)

	// Resolve the manifest's field names to their types.Var objects.
	fieldObjs := make(map[*types.Var]string) // obj -> "Type.field"
	for typeName, fieldNames := range manifest {
		obj := u.Pkg.Scope().Lookup(typeName)
		tn, ok := obj.(*types.TypeName)
		if !ok {
			continue
		}
		st, ok := tn.Type().Underlying().(*types.Struct)
		if !ok {
			continue
		}
		want := make(map[string]bool, len(fieldNames))
		for _, n := range fieldNames {
			want[n] = true
		}
		for i := 0; i < st.NumFields(); i++ {
			if f := st.Field(i); want[f.Name()] {
				fieldObjs[f] = typeName + "." + f.Name()
			}
		}
	}
	if len(fieldObjs) == 0 {
		return diags
	}

	for _, fd := range decls {
		recv := recvBaseName(fd)
		if recv == "" || !fd.Name.IsExported() {
			continue
		}
		if _, tracked := manifest[recv]; !tracked {
			continue
		}
		closure := callClosure(u, decls, []*ast.FuncDecl{fd})
		wrote, wrotePos := closureWrites(u, closure, fieldObjs)
		if wrote == "" {
			continue
		}
		if closureCallsInvalidator(u, closure, invalidators) {
			continue
		}
		if exempted(u, ex, fd.Pos()) {
			continue
		}
		report(fd.Pos(),
			"memo invalidation: exported method %s.%s writes fingerprint input %s (at %s) without reaching the memo-invalidation path; call MemoFlush or add //simlint:memoexempt <reason>",
			recv, fd.Name.Name, wrote, u.Fset.Position(wrotePos))
	}
	return diags
}

// closureWrites returns the first manifest field written anywhere in
// the closure (assignment or ++/--), or "".
func closureWrites(u *Unit, closure map[*ast.FuncDecl]bool, fieldObjs map[*types.Var]string) (string, token.Pos) {
	name, pos := "", token.NoPos
	for fd := range closure {
		ast.Inspect(fd, func(n ast.Node) bool {
			var lhss []ast.Expr
			switch n := n.(type) {
			case *ast.AssignStmt:
				lhss = n.Lhs
			case *ast.IncDecStmt:
				lhss = []ast.Expr{n.X}
			default:
				return true
			}
			for _, lhs := range lhss {
				// Unwrap element/deref writes: ctx.regs[r] = v mutates
				// the regs field just as surely as ctx.regs = nil.
				for {
					switch x := lhs.(type) {
					case *ast.IndexExpr:
						lhs = x.X
						continue
					case *ast.StarExpr:
						lhs = x.X
						continue
					case *ast.ParenExpr:
						lhs = x.X
						continue
					}
					break
				}
				sel, ok := lhs.(*ast.SelectorExpr)
				if !ok {
					continue
				}
				s, ok := u.Info.Selections[sel]
				if !ok {
					continue
				}
				v, ok := s.Obj().(*types.Var)
				if !ok {
					continue
				}
				if fq, tracked := fieldObjs[v]; tracked {
					// Keep the earliest position for deterministic output.
					if pos == token.NoPos || sel.Pos() < pos {
						name, pos = fq, sel.Pos()
					}
				}
			}
			return true
		})
	}
	return name, pos
}

// closureCallsInvalidator reports whether any function in the closure
// calls (or references — a deferred method value counts) one of the
// package's memo invalidators.
func closureCallsInvalidator(u *Unit, closure map[*ast.FuncDecl]bool, invalidators map[string]bool) bool {
	if len(invalidators) == 0 {
		return false
	}
	for fd := range closure {
		// The invalidator itself may be in the closure (MemoFlush calls
		// helpers): being the invalidator counts as reaching it.
		if invalidators[fd.Name.Name] && fd.Recv != nil {
			return true
		}
		found := false
		ast.Inspect(fd, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			fn, ok := u.Info.Uses[id].(*types.Func)
			if ok && fn.Pkg() == u.Pkg && invalidators[fn.Name()] {
				found = true
			}
			return true
		})
		if found {
			return true
		}
	}
	return false
}
