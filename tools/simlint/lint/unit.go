package lint

// The cmd/go vet-tool protocol, stdlib-only (moved from the original
// tools/determlint unitchecker).
//
// For each package, cmd/go writes a JSON config describing the unit of
// work (file list, import map, export-data locations) and invokes the
// tool with the config path as its sole argument. The tool typechecks
// the package against the compiler's export data, runs the enabled
// analyzers, prints findings to stderr as file:line:col: message,
// writes its facts file (empty — all simlint analyzers are
// intraprocedural within a package), and exits 2 when it found
// anything.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// UnitConfig mirrors the fields of cmd/go's vet config that this tool
// consumes (the file carries more; unknown fields are ignored).
type UnitConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

// RunUnit loads one vet unit config, typechecks its package and runs
// the given analyzers over it. Diagnostics go to stderr in vet format.
func RunUnit(cfgPath string, analyzers []*Analyzer) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg UnitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		// Dependency of a listed package: cmd/go only wants our facts
		// (none — the analyzers are intraprocedural), not diagnostics.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		// ParseComments: the exemption grammar lives in comments.
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export-data importer: resolve an import path through ImportMap
	// (vendoring, test variants), then read the compiled package file
	// cmd/go listed for it.
	exp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return exp.Import(importPath)
	})

	info := newInfo()
	tc := types.Config{Importer: imp}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	u := &Unit{Fset: fset, Files: files, Info: info, Pkg: pkg, Path: cfg.ImportPath}
	diags := Run(u, analyzers)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s: %s\n", fset.Position(d.Pos), d.Analyzer, d.Msg)
	}
	// cmd/go caches a facts file per package and feeds it to dependents;
	// it must exist even though these analyzers export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// PrintVersion answers the -V=full handshake. The format is the one
// cmd/go's tool-ID scanner accepts: name, "version", a version string
// whose buildID term fingerprints the binary.
func PrintVersion(toolName string) {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, toolName+":", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, toolName+":", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, toolName+":", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel %s buildID=%02x\n", exe, toolName, h.Sum(nil))
}

// VetFlagDefs renders the -flags answer: the analyzer enable flags and
// the output-mode flags cmd/go may pass through from the `go vet`
// command line (e.g. `go vet -vettool=bin/simlint -snapcover=false`).
func VetFlagDefs() string {
	type flagDef struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	var defs []flagDef
	for _, a := range All() {
		defs = append(defs, flagDef{Name: a.Name, Bool: true, Usage: "enable the " + a.Name + " analyzer"})
	}
	out, _ := json.Marshal(defs)
	return string(out)
}
