package lint

// The determinism analyzer: simulation and analysis code must produce
// byte-identical output for identical inputs. Ported verbatim from the
// original tools/determlint (PR 2), now one analyzer among five.
//
//   - globalrand: package-level math/rand functions draw from the
//     process-global source, whose sequence depends on everything else
//     that touched it (and, unseeded, on the run).
//   - timenow: time.Now leaks wall-clock time into results.
//   - envdep: os.Getenv/LookupEnv/Environ and runtime.NumCPU make
//     results depend on the machine and environment the run happens on.
//     runtime.GOMAXPROCS is deliberately exempt: the sweep runner sets
//     and reads it to size worker pools without affecting output.
//   - maporder: ranging over a map and appending/printing inside the
//     loop emits elements in a random order unless the accumulator is
//     sorted afterwards.
//   - goroutine: raw `go` statements fork execution whose interleaving
//     (and hence any shared-state effect ordering) the scheduler picks
//     per run. The one approved concurrency site is the analysis/sweep
//     worker pool, which joins results in deterministic input order;
//     everything else must route through it.
//
// This analyzer also validates the simlint directive grammar itself:
// an unknown //simlint:<kind> comment silently disables nothing and
// must be loud.

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// goroutinePoolPkg is the one package allowed to start goroutines: its
// worker pool joins results in deterministic input order, making the
// scheduler's interleaving unobservable in the output.
const goroutinePoolPkg = "microscope/analysis/sweep"

func analyzerDeterminism() *Analyzer {
	return &Analyzer{
		Name: "determinism",
		Doc:  "byte-identical output for identical inputs: no global math/rand, time.Now, environment reads, map-order-dependent output, or undisciplined goroutines",
		Run:  runDeterminism,
	}
}

func runDeterminism(u *Unit) []Diagnostic {
	var diags []Diagnostic
	report := reporter(&diags)
	for _, f := range u.SourceFiles() {
		checkGlobalFuncs(f, u.Info, report)
		checkEnvDep(f, u.Info, report)
		checkMapOrder(f, u.Info, report)
		if u.PkgPath() != goroutinePoolPkg {
			checkGoroutine(f, report)
		}
	}
	checkUnknownExemptKinds(u, report)
	return diags
}

// checkGoroutine flags raw go statements. Outside the approved
// analysis/sweep worker pool, forked goroutines make effect ordering a
// scheduler decision; concurrency must route through the pool, whose
// result join is in deterministic input order.
func checkGoroutine(f *ast.File, report func(token.Pos, string, ...interface{})) {
	ast.Inspect(f, func(n ast.Node) bool {
		if g, ok := n.(*ast.GoStmt); ok {
			report(g.Pos(),
				"goroutine discipline: raw go statement outside the approved %s worker pool; route concurrency through the sweep runner so results join in deterministic order",
				goroutinePoolPkg)
		}
		return true
	})
}

// randAllowed are the math/rand package-level functions that construct
// explicit sources rather than using the global one.
var randAllowed = map[string]bool{
	"New":       true,
	"NewSource": true,
	"NewZipf":   true,
}

// checkGlobalFuncs flags references to nondeterministic package-level
// functions: the global math/rand source and time.Now. References, not
// just calls — passing rand.Intn as a value is the same hazard.
func checkGlobalFuncs(f *ast.File, info *types.Info, report func(token.Pos, string, ...interface{})) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil {
			return true
		}
		// Only package-level functions: methods (rand.Rand.Intn on an
		// explicit source, time.Time.Sub, ...) are deterministic given
		// their receiver.
		if fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "math/rand", "math/rand/v2":
			if !randAllowed[fn.Name()] {
				report(sel.Pos(),
					"nondeterministic: %s.%s uses the global math/rand source; use a seeded *rand.Rand from the run config",
					fn.Pkg().Name(), fn.Name())
			}
		case "time":
			if fn.Name() == "Now" {
				report(sel.Pos(),
					"nondeterministic: time.Now reads the wall clock; use the simulated cycle counter or a clock threaded through the config")
			}
		}
		return true
	})
}

// checkEnvDep flags references to functions whose results vary with the
// host machine or process environment: os.Getenv/LookupEnv/Environ and
// runtime.NumCPU. A sweep that sizes batches by NumCPU, or an analysis
// that reads a tuning knob from the environment, produces different
// output on different machines with identical inputs. Reading
// runtime.GOMAXPROCS is allowed: the deterministic sweep runner sets it
// explicitly, so its value is part of the configuration, not the host.
func checkEnvDep(f *ast.File, info *types.Info, report func(token.Pos, string, ...interface{})) {
	ast.Inspect(f, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fn, ok := info.Uses[sel.Sel].(*types.Func)
		if !ok || fn.Pkg() == nil || fn.Type().(*types.Signature).Recv() != nil {
			return true
		}
		switch fn.Pkg().Path() {
		case "os":
			switch fn.Name() {
			case "Getenv", "LookupEnv", "Environ":
				report(sel.Pos(),
					"environment-dependent: os.%s makes output depend on the process environment; thread the value through the run config",
					fn.Name())
			}
		case "runtime":
			if fn.Name() == "NumCPU" {
				report(sel.Pos(),
					"environment-dependent: runtime.NumCPU varies per machine; take worker counts from the run config (runtime.GOMAXPROCS is exempt: it is set explicitly)")
			}
		}
		return true
	})
}

// checkMapOrder flags range-over-map loops whose body has an
// order-sensitive effect: appending to an accumulator declared outside
// the loop, writing to an output stream, or printing. A finding is
// suppressed when a sort call later in the same function takes the
// accumulator (the common collect-keys-then-sort idiom); print/write
// sinks have no accumulator to sort and are always flagged.
func checkMapOrder(f *ast.File, info *types.Info, report func(token.Pos, string, ...interface{})) {
	for _, decl := range f.Decls {
		checkMapOrderIn(decl, info, report)
	}
}

func checkMapOrderIn(decl ast.Decl, info *types.Info, report func(token.Pos, string, ...interface{})) {
	sorts := collectSortCalls(decl, info)
	ast.Inspect(decl, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if _, isMap := info.TypeOf(rng.X).Underlying().(*types.Map); !isMap {
			return true
		}
		for _, sink := range findOrderSinks(rng, info) {
			if sink.acc != "" && sortedAfter(sorts, sink.acc, rng.End()) {
				continue
			}
			report(sink.pos,
				"nondeterministic: map iteration order reaches output (%s); iterate sorted keys or sort %q afterwards",
				sink.what, sink.accName())
		}
		return true
	})
}

// orderSink is one order-sensitive effect inside a map-range body.
type orderSink struct {
	pos  token.Pos
	what string
	acc  string // root identifier of the accumulator, "" for direct output
}

func (s orderSink) accName() string {
	if s.acc == "" {
		return "the output"
	}
	return s.acc
}

// findOrderSinks scans a map-range body for order-sensitive effects.
func findOrderSinks(rng *ast.RangeStmt, info *types.Info) []orderSink {
	var sinks []orderSink
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// Nested map ranges are visited on their own.
			if n != rng {
				if _, isMap := info.TypeOf(n.X).Underlying().(*types.Map); isMap {
					return false
				}
			}
		case *ast.AssignStmt:
			// acc = append(acc, ...) with acc declared outside the loop.
			for _, rhs := range n.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(call, info) || len(call.Args) == 0 {
					continue
				}
				id := rootIdent(call.Args[0])
				if id == nil || declaredWithin(id, info, rng) {
					continue
				}
				sinks = append(sinks, orderSink{
					pos: n.Pos(), what: "append to " + id.Name, acc: id.Name,
				})
			}
		case *ast.CallExpr:
			if fn, ok := calleeFunc(n, info); ok {
				if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" &&
					strings.Contains(fn.Name(), "rint") { // Print/Println/Fprintf/...
					sinks = append(sinks, orderSink{pos: n.Pos(), what: "call to fmt." + fn.Name()})
				}
				if strings.HasPrefix(fn.Name(), "Write") &&
					fn.Type().(*types.Signature).Recv() != nil {
					sel, _ := n.Fun.(*ast.SelectorExpr)
					var acc string
					if sel != nil {
						if id := rootIdent(sel.X); id != nil && !declaredWithin(id, info, rng) {
							acc = id.Name
						}
					}
					sinks = append(sinks, orderSink{
						pos: n.Pos(), what: fn.Name() + " on a stream", acc: acc,
					})
				}
			}
		}
		return true
	})
	return sinks
}

// sortCall records a call into package sort and the root identifiers of
// its arguments.
type sortCall struct {
	pos  token.Pos
	args []string
}

func collectSortCalls(root ast.Node, info *types.Info) []sortCall {
	var out []sortCall
	ast.Inspect(root, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn, ok := calleeFunc(call, info)
		if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "sort" {
			return true
		}
		sc := sortCall{pos: call.Pos()}
		for _, a := range call.Args {
			if id := rootIdent(a); id != nil {
				sc.args = append(sc.args, id.Name)
			}
			// Dig into closures too: sort.Slice(keys, func(...) ...)
			// names the accumulator in the comparator's body.
			ast.Inspect(a, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok {
					sc.args = append(sc.args, id.Name)
				}
				return true
			})
		}
		out = append(out, sc)
		return true
	})
	return out
}

// sortedAfter reports whether a sort call mentioning acc appears after
// pos within the same declaration: the sort frequently lives in a
// sibling loop a few statements below the map range.
func sortedAfter(sorts []sortCall, acc string, pos token.Pos) bool {
	for _, sc := range sorts {
		if sc.pos < pos {
			continue
		}
		for _, a := range sc.args {
			if a == acc {
				return true
			}
		}
	}
	return false
}

func isBuiltinAppend(call *ast.CallExpr, info *types.Info) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := info.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

func calleeFunc(call *ast.CallExpr, info *types.Info) (*types.Func, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	return fn, ok
}

// rootIdent unwraps index, selector, paren and star expressions to the
// base identifier: m[k] -> m, b.buf -> b, (*p).x -> p.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.IndexExpr:
			e = x.X
		case *ast.SelectorExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether id's declaration lies inside the range
// statement (a per-iteration local, not an accumulator).
func declaredWithin(id *ast.Ident, info *types.Info, rng *ast.RangeStmt) bool {
	obj := info.Uses[id]
	if obj == nil {
		obj = info.Defs[id]
	}
	if obj == nil {
		return false // unresolved: assume outer to stay conservative
	}
	return obj.Pos() >= rng.Pos() && obj.Pos() < rng.End()
}
