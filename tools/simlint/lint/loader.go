package lint

// The standalone module loader: parse and typecheck packages of this
// module without cmd/go in the loop. The vet protocol hands us export
// data; standalone mode (bin/simlint ./sim/...), the live-tree tests
// and the -diff baseline builder instead load module-internal imports
// recursively from source, resolving the module path from go.mod and
// the standard library through the source importer. Build-tagged
// variant files (e.g. the statsdebug stats guards) are selected the
// way a default `go build` would, via go/build/constraint, so the
// loaded package matches what ships.

import (
	"fmt"
	"go/ast"
	"go/build/constraint"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Loader loads and typechecks this module's packages from source.
type Loader struct {
	Fset    *token.FileSet
	ModPath string // module path from go.mod, e.g. "microscope"
	ModRoot string // filesystem root of the module

	// Overlay substitutes file contents by absolute path — the
	// field-deletion acceptance test mutates sim/cpu/snapshot.go in
	// memory and re-typechecks through this.
	Overlay map[string]string

	std  types.Importer
	pkgs map[string]*Unit
	// loading guards against import cycles (which go/types would also
	// reject, but with a worse error).
	loading map[string]bool
}

// NewLoader finds the module root at or above dir and reads the module
// path from its go.mod.
func NewLoader(dir string) (*Loader, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root := abs
	for {
		if _, err := os.Stat(filepath.Join(root, "go.mod")); err == nil {
			break
		}
		parent := filepath.Dir(root)
		if parent == root {
			return nil, fmt.Errorf("no go.mod at or above %s", abs)
		}
		root = parent
	}
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	modPath := ""
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			modPath = strings.TrimSpace(rest)
			break
		}
	}
	if modPath == "" {
		return nil, fmt.Errorf("no module directive in %s/go.mod", root)
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:    fset,
		ModPath: modPath,
		ModRoot: root,
		std:     importer.ForCompiler(fset, "source", nil),
		pkgs:    make(map[string]*Unit),
		loading: make(map[string]bool),
	}, nil
}

// Load typechecks the package with the given module-internal import
// path (the module path itself or a sub-path) and returns its Unit.
// Results are cached; a package is typechecked once per loader.
func (l *Loader) Load(path string) (*Unit, error) {
	if u, ok := l.pkgs[path]; ok {
		return u, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir := l.ModRoot
	if path != l.ModPath {
		rest, ok := strings.CutPrefix(path, l.ModPath+"/")
		if !ok {
			return nil, fmt.Errorf("%s is not inside module %s", path, l.ModPath)
		}
		dir = filepath.Join(l.ModRoot, filepath.FromSlash(rest))
	}

	files, err := l.parseDir(dir)
	if err != nil {
		return nil, err
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no buildable Go files in %s", dir)
	}

	info := newInfo()
	tc := types.Config{Importer: importerFunc(l.importPkg)}
	pkg, err := tc.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", path, err)
	}
	u := &Unit{Fset: l.Fset, Files: files, Info: info, Pkg: pkg, Path: path}
	l.pkgs[path] = u
	return u, nil
}

func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if path == l.ModPath || strings.HasPrefix(path, l.ModPath+"/") {
		u, err := l.Load(path)
		if err != nil {
			return nil, err
		}
		return u.Pkg, nil
	}
	return l.std.Import(path)
}

// parseDir parses the non-test, default-build-selected Go files of one
// directory, in name order for deterministic positions.
func (l *Loader) parseDir(dir string) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		names = append(names, name)
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		full := filepath.Join(dir, name)
		var src interface{}
		if l.Overlay != nil {
			if text, ok := l.Overlay[full]; ok {
				src = text
			}
		}
		f, err := parser.ParseFile(l.Fset, full, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		if !buildIncluded(f) {
			continue
		}
		files = append(files, f)
	}
	return files, nil
}

// buildIncluded evaluates a file's //go:build constraint (if any) the
// way a default build on this host would: GOOS/GOARCH/release tags
// hold, custom tags (statsdebug, ...) do not.
func buildIncluded(f *ast.File) bool {
	for _, cg := range f.Comments {
		// Constraints must precede the package clause.
		if cg.Pos() >= f.Package {
			break
		}
		for _, c := range cg.List {
			if !constraint.IsGoBuild(c.Text) {
				continue
			}
			expr, err := constraint.Parse(c.Text)
			if err != nil {
				return true // malformed: let the typechecker complain
			}
			return expr.Eval(func(tag string) bool {
				return tag == runtime.GOOS || tag == runtime.GOARCH ||
					strings.HasPrefix(tag, "go1")
			})
		}
	}
	return true
}

// ModulePackages returns the import paths of every package in the
// module, found by walking the tree for directories with buildable Go
// files (testdata, hidden and vendor-style dirs excluded), sorted.
func (l *Loader) ModulePackages() ([]string, error) {
	var out []string
	err := filepath.WalkDir(l.ModRoot, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModRoot && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor" || name == "bin") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") || strings.HasSuffix(d.Name(), "_test.go") {
			return nil
		}
		rel, err := filepath.Rel(l.ModRoot, filepath.Dir(p))
		if err != nil {
			return err
		}
		path := l.ModPath
		if rel != "." {
			path = l.ModPath + "/" + filepath.ToSlash(rel)
		}
		if len(out) == 0 || out[len(out)-1] != path {
			out = append(out, path)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	// WalkDir may visit files of one dir non-contiguously across dirs;
	// dedupe after sorting.
	dedup := out[:0]
	for i, p := range out {
		if i == 0 || out[i-1] != p {
			dedup = append(dedup, p)
		}
	}
	return dedup, nil
}

// ExpandPatterns resolves CLI package patterns ("./sim/...", "./...",
// "sim/cpu") against the module, returning import paths.
func (l *Loader) ExpandPatterns(patterns []string) ([]string, error) {
	all, err := l.ModulePackages()
	if err != nil {
		return nil, err
	}
	seen := make(map[string]bool)
	var out []string
	add := func(p string) {
		if !seen[p] {
			seen[p] = true
			out = append(out, p)
		}
	}
	for _, pat := range patterns {
		pat = strings.TrimPrefix(pat, "./")
		pat = strings.TrimSuffix(pat, "/")
		switch {
		case pat == "..." || pat == ".":
			for _, p := range all {
				add(p)
			}
		case strings.HasSuffix(pat, "/..."):
			prefix := l.ModPath + "/" + strings.TrimSuffix(pat, "/...")
			for _, p := range all {
				if p == prefix || strings.HasPrefix(p, prefix+"/") {
					add(p)
				}
			}
		default:
			add(l.ModPath + "/" + pat)
		}
	}
	sort.Strings(out)
	return out, nil
}
