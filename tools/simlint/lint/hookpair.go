package lint

// The hookpair analyzer: hook-set completeness. The simulator's
// extension points are interfaces — cpu.Tracer, cpu.ShadowTracker,
// cpu.FaultHandler, kernel.FaultHook, defense.Defense — and a struct
// that name-matches part of a hook set without satisfying the whole
// interface is a latent wiring bug: the value fails the interface
// assertion at runtime (or keeps compiling against a stale local copy
// of the method list) instead of receiving hooks. This bit in PR 9:
// a defense with four of the five Defense methods is not a defense,
// and a shadow tracker handling five of the six Shadow* events
// desynchronizes the taint state on the sixth.
//
// For each struct type declared in the package and each manifest hook
// interface visible from the package:
//   - full name overlap + satisfied interface: clean (embedding a
//     delegate that implements the interface also lands here — the
//     promoted methods complete the set);
//   - full name overlap, unsatisfied: flagged (signature drift);
//   - partial overlap of >= 2 hook names, or a single distinctive hook
//     name (single-method interfaces; generic names like Name/String
//     are stoplisted in hookCommonNames): flagged unless the type
//     carries //simlint:hookexempt <reason>.

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func analyzerHookpair() *Analyzer {
	return &Analyzer{
		Name: "hookpair",
		Doc:  "implementations of the simulator's hook interfaces (hookManifest) must satisfy the full hook set or delegate via embedding; partial name matches need //simlint:hookexempt <reason>",
		Run:  runHookpair,
	}
}

func runHookpair(u *Unit) []Diagnostic {
	var diags []Diagnostic
	report := reporter(&diags)
	ifaces := resolveHookIfaces(u)
	if len(ifaces) == 0 {
		return diags
	}
	ex := exemptionsFor(u, "hookexempt", report)

	for _, f := range u.SourceFiles() {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				if _, isStruct := ts.Type.(*ast.StructType); !isStruct {
					continue
				}
				tn, ok := u.Info.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				checkHookType(u, ts, tn, ifaces, ex, report)
			}
		}
	}
	return diags
}

// resolvedIface is one hook interface visible from the unit.
type resolvedIface struct {
	name  string // display name, e.g. "cpu.Tracer"
	iface *types.Interface
	names map[string]bool // its method names
}

// resolveHookIfaces finds the manifest interfaces among the unit's own
// scope and its transitive imports. A package that cannot see a hook
// interface cannot plug into it, so skipping unresolvable entries is
// sound.
func resolveHookIfaces(u *Unit) []resolvedIface {
	pkgs := map[string]*types.Package{u.PkgPath(): u.Pkg}
	var walk func(p *types.Package)
	walk = func(p *types.Package) {
		for _, imp := range p.Imports() {
			if _, seen := pkgs[imp.Path()]; seen {
				continue
			}
			pkgs[imp.Path()] = imp
			walk(imp)
		}
	}
	walk(u.Pkg)

	var out []resolvedIface
	for _, hi := range hookManifest {
		p, ok := pkgs[hi.PkgPath]
		if !ok {
			continue
		}
		tn, ok := p.Scope().Lookup(hi.Name).(*types.TypeName)
		if !ok {
			continue
		}
		iface, ok := tn.Type().Underlying().(*types.Interface)
		if !ok {
			continue
		}
		names := make(map[string]bool, iface.NumMethods())
		for i := 0; i < iface.NumMethods(); i++ {
			names[iface.Method(i).Name()] = true
		}
		out = append(out, resolvedIface{name: p.Name() + "." + hi.Name, iface: iface, names: names})
	}
	return out
}

func checkHookType(u *Unit, ts *ast.TypeSpec, tn *types.TypeName,
	ifaces []resolvedIface, ex map[string]exemption,
	report func(token.Pos, string, ...interface{})) {

	ptr := types.NewPointer(tn.Type())
	mset := types.NewMethodSet(ptr)
	have := make(map[string]bool, mset.Len())
	for i := 0; i < mset.Len(); i++ {
		have[mset.At(i).Obj().Name()] = true
	}
	if len(have) == 0 {
		return
	}

	for _, ri := range ifaces {
		// The interface's own defining struct wrappers aside, a type
		// never "partially implements" an interface it cannot name.
		var overlap []string
		for name := range ri.names {
			if have[name] {
				overlap = append(overlap, name)
			}
		}
		if len(overlap) == 0 {
			continue
		}
		sort.Strings(overlap)

		if len(overlap) == ri.iface.NumMethods() {
			if types.Implements(ptr, ri.iface) {
				continue // complete hook set, correctly typed
			}
			if exempted(u, ex, ts.Pos()) {
				continue
			}
			report(ts.Pos(),
				"hook completeness: %s declares the full %s hook set (%s) but does not satisfy the interface — a hook method's signature has drifted",
				tn.Name(), ri.name, strings.Join(overlap, ", "))
			continue
		}

		// Partial overlap: require it to be convincing before flagging.
		// A single generic name (Name, String, ...) is not evidence of
		// an intended hook implementation; a single distinctive one
		// (ShadowSquash, Harden) is.
		if len(overlap) == 1 && hookCommonNames[overlap[0]] {
			continue
		}
		if exempted(u, ex, ts.Pos()) {
			continue
		}
		var missing []string
		for i := 0; i < ri.iface.NumMethods(); i++ {
			if name := ri.iface.Method(i).Name(); !have[name] {
				missing = append(missing, name)
			}
		}
		sort.Strings(missing)
		report(ts.Pos(),
			"hook completeness: %s handles %s of the %s hook set but is missing %s; implement the full set, embed a delegate that does, or add //simlint:hookexempt <reason>",
			tn.Name(), strings.Join(overlap, ", "), ri.name, strings.Join(missing, ", "))
	}
}
