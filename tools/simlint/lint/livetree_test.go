package lint

// Live-tree gates: the checked-in sources must be clean under every
// analyzer, every exemption in the tree must carry its reason, the
// memoinval manifest must stay synchronized with memoFixedDigest, and
// snapcover must actually catch the deletion of a serialized field
// from cpu.Core / cpu.Context (the acceptance-criteria demonstration).

import (
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestLiveTreeClean runs all five analyzers over every package of the
// module and requires zero findings: every real bug is fixed, every
// deliberate deviation carries a written exemption.
func TestLiveTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks the whole module")
	}
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	paths, err := l.ModulePackages()
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) < 10 {
		t.Fatalf("module walk found only %d packages: %v", len(paths), paths)
	}
	analyzers := All()
	for _, path := range paths {
		u, err := l.Load(path)
		if err != nil {
			t.Fatalf("loading %s: %v", path, err)
		}
		for _, d := range Run(u, analyzers) {
			t.Errorf("%s: %s: %s", l.Fset.Position(d.Pos), d.Analyzer, d.Msg)
		}
	}
}

// TestTreeExemptionsCarryReasons walks every Go file in the repo and
// parses its //simlint: comments: each must be a known exemption kind
// with a non-empty reason. This is the cheap, typecheck-free meta-gate
// that keeps "//simlint:snapexempt" (no reason) and typo'd kinds from
// accumulating in files the analyzers happen not to flag today.
func TestTreeExemptionsCarryReasons(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	good := 0
	err = filepath.WalkDir(l.ModRoot, func(p string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			name := d.Name()
			if p != l.ModRoot && (strings.HasPrefix(name, ".") || name == "bin" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(d.Name(), ".go") {
			return nil
		}
		f, err := parser.ParseFile(fset, p, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return err
		}
		ok, bad := CollectFileExemptions(f)
		good += len(ok)
		for _, c := range bad {
			t.Errorf("%s: malformed simlint directive %q (unknown kind or missing reason)",
				fset.Position(c.Pos()), c.Text)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if good == 0 {
		t.Error("found no well-formed exemptions in the tree; the walk or the parser is broken")
	}
}

// TestManifestSyncWithMemoFixedDigest pins memoManifest["microscope/sim/cpu"]
// to the actual body of Core.memoFixedDigest: every c.<field> /
// ctx.<field> the digest reads must be in the manifest (else memoinval
// cannot protect it), and every manifest entry must still be read by
// the digest (else the manifest demands invalidation for state the
// fingerprint no longer sees). Parsed structurally — no typechecking —
// so the test survives refactors of everything but the digest itself.
func TestManifestSyncWithMemoFixedDigest(t *testing.T) {
	l, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	path := filepath.Join(l.ModRoot, "sim", "cpu", "memo.go")
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	var digest *ast.FuncDecl
	for _, decl := range f.Decls {
		if fd, ok := decl.(*ast.FuncDecl); ok && fd.Name.Name == "memoFixedDigest" {
			digest = fd
			break
		}
	}
	if digest == nil {
		t.Fatal("sim/cpu/memo.go no longer declares memoFixedDigest; rewrite this test against the new fingerprint function")
	}

	read := map[string]map[string]bool{"c": {}, "ctx": {}}
	ast.Inspect(digest.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if fields, tracked := read[id.Name]; tracked {
				fields[sel.Sel.Name] = true
			}
		}
		return true
	})

	// Core fields the digest reads but the manifest deliberately omits:
	// ports is run-loop-internal issue-port state with no exported
	// mutator, so there is no method for memoinval to check.
	coreAllowlist := map[string]bool{"ports": true}

	manifest := memoManifest["microscope/sim/cpu"]
	check := func(recv, manifestType string, allow map[string]bool) {
		want := make(map[string]bool)
		for _, field := range manifest[manifestType] {
			want[field] = true
		}
		for field := range read[recv] {
			if allow[field] {
				continue
			}
			if !want[field] {
				t.Errorf("memoFixedDigest reads %s.%s but memoManifest[%q][%q] does not list it",
					recv, field, "microscope/sim/cpu", manifestType)
			}
		}
		for field := range want {
			if !read[recv][field] {
				t.Errorf("memoManifest lists %s.%s but memoFixedDigest no longer reads it", manifestType, field)
			}
		}
	}
	check("c", "Core", coreAllowlist)
	check("ctx", "Context", nil)
}

// TestSnapcoverCatchesFieldDeletion is the acceptance-criteria
// demonstration: sim/cpu is clean today, and deleting the serialization
// of any one snapshot-covered field (the Snapshot-side line and the
// Restore-side line, via a source overlay) makes snapcover fail with a
// finding naming that field.
func TestSnapcoverCatchesFieldDeletion(t *testing.T) {
	if testing.Short() {
		t.Skip("typechecks sim/cpu repeatedly")
	}
	baseline, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	snapPath := filepath.Join(baseline.ModRoot, "sim", "cpu", "snapshot.go")
	src, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	text := string(src)

	u, err := baseline.Load("microscope/sim/cpu")
	if err != nil {
		t.Fatal(err)
	}
	snapcover := []*Analyzer{ByName("snapcover")}
	if diags := Run(u, snapcover); len(diags) != 0 {
		t.Fatalf("sim/cpu is not snapcover-clean at baseline: %v", diags)
	}

	// Each case deletes a field's only two references in the
	// Snapshot/Restore closure (verified: no helper reachable from the
	// pair touches these fields elsewhere).
	cases := []struct {
		field string
		lines []string
	}{
		{"Core.rngState", []string{"RngState:    c.rngState,", "c.rngState = s.RngState"}},
		{"Core.jitterCount", []string{"JitterCount: c.jitterCount,", "c.jitterCount = s.JitterCount"}},
		{"Core.skipped", []string{"Skipped:     c.skipped,", "c.skipped = s.Skipped"}},
	}
	for _, tc := range cases {
		t.Run(tc.field, func(t *testing.T) {
			mutated := text
			for _, line := range tc.lines {
				if !strings.Contains(mutated, line) {
					t.Fatalf("snapshot.go no longer contains %q; update this test's line anchors", line)
				}
				mutated = strings.Replace(mutated, line, "", 1)
			}
			l, err := NewLoader(".")
			if err != nil {
				t.Fatal(err)
			}
			l.Overlay = map[string]string{snapPath: mutated}
			mu, err := l.Load("microscope/sim/cpu")
			if err != nil {
				t.Fatalf("mutated sim/cpu no longer typechecks: %v", err)
			}
			diags := Run(mu, snapcover)
			found := false
			for _, d := range diags {
				if strings.Contains(d.Msg, "field "+tc.field+" is not serialized") {
					found = true
				}
			}
			if !found {
				t.Errorf("deleting the serialization of %s produced no snapcover finding (got %v)", tc.field, diags)
			}
		})
	}
}
