package lint

// The checked-in manifests. These are the analyzer inputs that cannot
// be derived structurally from the package under analysis:
//
//   - memoManifest names the replay-memo fingerprint inputs, derived
//     from sim/cpu/memo.go's memoFixedDigest (the manifest-sync test in
//     manifest_test.go pins the two to each other);
//   - enumManifest names the closed enums whose switches must be total;
//   - hookManifest names the hook interfaces whose implementations must
//     be complete.
//
// Each manifest carries permanent fixture entries (package paths
// "memoinval", "enumtotal", "hookpair") so the want-comment fixtures
// exercise the same manifest-driven lookup path as the live tree.

// memoManifest maps a package path to its fingerprint-owning receiver
// types and, per type, the fields folded into the replay memo's window
// fingerprint. An exported method on one of these types that writes one
// of these fields must call a memo invalidator (memoInvalidators) or
// carry //simlint:memoexempt <reason>.
//
// The sim/cpu entry mirrors memoFixedDigest: per-context architectural
// state (regs, fetchPC, serialize|fetchHalted, stallUntil, progEpoch,
// the address space identity) and per-core stream state (cycle phase,
// rngState, jitterCount, the timing config, the context roster). Cache,
// TLB, page-walk-cache, predictor and physical-memory state are
// deliberately absent: the memo reads them through lazy first-touch
// probes that re-validate at splice time, so mutating them forces a
// miss without any invalidation call.
var memoManifest = map[string]map[string][]string{
	"microscope/sim/cpu": {
		"Core":    {"cycle", "rngState", "jitterCount", "cfg", "contexts"},
		"Context": {"regs", "fetchPC", "serialize", "fetchHalted", "stallUntil", "progEpoch", "as"},
	},
	// Fixture package (testdata/src/memoinval).
	"memoinval": {
		"Machine": {"clock", "seed"},
	},
}

// memoInvalidators maps a package path to the method/function names
// that count as the memo-invalidation path. A manifest method is clean
// if its same-package call closure reaches any of these.
var memoInvalidators = map[string]map[string]bool{
	"microscope/sim/cpu": {"MemoFlush": true, "memoAbortRecording": true},
	"memoinval":          {"Flush": true},
}

// enumManifest names the closed enums ("pkgpath.TypeName") whose value
// switches must be total: cover every declared constant of the type,
// carry a default clause, or carry //simlint:enumexempt <reason>.
// Sentinel count constants (NumChannels, NumEventKinds) are typed int,
// not the enum type, so they are invisible here by construction.
var enumManifest = map[string]bool{
	"microscope/analysis/sidechan.Channel":    true,
	"microscope/sim/sanitizer.ReconcileClass": true,
	"microscope/sim/sanitizer.Role":           true,
	"microscope/analysis/verify.Verdict":      true,
	"microscope/sim/cpu.EventKind":            true,
	"microscope/sim/trace.Fate":               true,
	"microscope/analysis/static.Severity":     true,
	// Fixture package (testdata/src/enumtotal).
	"enumtotal.Kind": true,
}

// hookIface names one hook interface.
type hookIface struct {
	PkgPath string
	Name    string
}

// hookManifest names the hook interfaces whose implementations must
// handle the full hook set or delegate via embedding. A struct that
// name-matches part of a hook set without satisfying the interface is
// a wiring bug: the value silently fails the interface assertion (or
// satisfies an older copy of the interface) instead of hooking.
var hookManifest = []hookIface{
	{"microscope/sim/cpu", "Tracer"},
	{"microscope/sim/cpu", "ShadowTracker"},
	{"microscope/sim/cpu", "FaultHandler"},
	{"microscope/sim/kernel", "FaultHook"},
	{"microscope/attack/defense", "Defense"},
	// Fixture package (testdata/src/hookpair).
	{"hookpair", "Hook"},
}

// hookCommonNames are method names too generic to identify an intended
// hook implementation on their own: a lone Name() string must not drag
// every named thing in the repo into the Defense hook set. A
// single-method overlap is only flagged when the name is distinctive.
var hookCommonNames = map[string]bool{
	"Name":      true,
	"String":    true,
	"Reset":     true,
	"Configure": true,
	"Install":   true,
}
