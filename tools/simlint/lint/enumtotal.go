package lint

// The enumtotal analyzer: switch totality over the repo's closed
// enums. The side-channel taxonomy (sidechan.Channel), the sanitizer's
// reconcile classes, the verifier's verdicts, trace fates and core
// event kinds are closed sets: when a PR adds a value, every switch
// that dispatches on the type must decide what the new value means —
// silently falling off the end of a switch is how a new channel
// escapes the digest, a new verdict prints as garbage, or a new event
// kind vanishes from a collector. This generalizes the hand-rolled
// taxonomy-totality tests into a static pass.
//
// A switch over a manifest enum (enumManifest) is accepted when it
//   - covers every declared constant of the type (aliases count by
//     value; the sentinel count constants are typed int and thus
//     invisible), or
//   - carries a default clause (an explicit decision about the
//     remainder), or
//   - carries //simlint:enumexempt <reason>.
//
// A switch with a non-constant case expression cannot be proved total
// or partial and is skipped. Type switches are out of scope.

import (
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

func analyzerEnumtotal() *Analyzer {
	return &Analyzer{
		Name: "enumtotal",
		Doc:  "switches over the repo's closed enums (enumManifest) must cover every declared constant, carry a default, or carry //simlint:enumexempt <reason>",
		Run:  runEnumtotal,
	}
}

func runEnumtotal(u *Unit) []Diagnostic {
	var diags []Diagnostic
	report := reporter(&diags)
	ex := exemptionsFor(u, "enumexempt", report)

	for _, f := range u.SourceFiles() {
		ast.Inspect(f, func(n ast.Node) bool {
			sw, ok := n.(*ast.SwitchStmt)
			if !ok || sw.Tag == nil {
				return true
			}
			named, key := enumTagType(u, sw.Tag)
			if named == nil || !enumManifest[key] {
				return true
			}
			if exempted(u, ex, sw.Pos()) {
				return true
			}
			checkEnumSwitch(u, sw, named, key, report)
			return true
		})
	}
	return diags
}

// enumTagType resolves a switch tag's type to a named type and its
// manifest key "pkgpath.Name".
func enumTagType(u *Unit, tag ast.Expr) (*types.Named, string) {
	t := u.Info.TypeOf(tag)
	if t == nil {
		return nil, ""
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	obj := named.Obj()
	if obj == nil || obj.Pkg() == nil {
		return nil, ""
	}
	return named, obj.Pkg().Path() + "." + obj.Name()
}

func checkEnumSwitch(u *Unit, sw *ast.SwitchStmt, named *types.Named, key string,
	report func(token.Pos, string, ...interface{})) {

	// Declared constants of the type, from its defining package's scope.
	// With gc export data only exported constants are visible, which is
	// the full set for every manifest enum (the repo's enums export all
	// values; sentinel counts are typed int).
	declared := make(map[int64]string)
	scope := named.Obj().Pkg().Scope()
	for _, name := range scope.Names() {
		c, ok := scope.Lookup(name).(*types.Const)
		if !ok || !types.Identical(c.Type(), named) {
			continue
		}
		v, exact := constant.Int64Val(c.Val())
		if !exact {
			continue
		}
		// Prefer the first name per value in scope order (sorted), so
		// aliases report stably.
		if _, seen := declared[v]; !seen {
			declared[v] = name
		}
	}
	if len(declared) == 0 {
		return
	}

	covered := make(map[int64]bool)
	for _, stmt := range sw.Body.List {
		cc, ok := stmt.(*ast.CaseClause)
		if !ok {
			continue
		}
		if cc.List == nil {
			return // default clause: the remainder is decided explicitly
		}
		for _, e := range cc.List {
			tv, ok := u.Info.Types[e]
			if !ok || tv.Value == nil {
				return // non-constant case: totality is undecidable here
			}
			if v, exact := constant.Int64Val(tv.Value); exact {
				covered[v] = true
			}
		}
	}

	var missing []string
	for v, name := range declared {
		if !covered[v] {
			missing = append(missing, name)
		}
	}
	if len(missing) == 0 {
		return
	}
	sort.Strings(missing)
	report(sw.Pos(),
		"enum totality: switch over %s does not handle %s; add the missing case(s), a default clause deciding the remainder, or //simlint:enumexempt <reason>",
		shortEnumName(key), strings.Join(missing, ", "))
}

// shortEnumName compresses "microscope/analysis/sidechan.Channel" to
// "sidechan.Channel" for readable diagnostics.
func shortEnumName(key string) string {
	slash := strings.LastIndex(key, "/")
	return key[slash+1:]
}
