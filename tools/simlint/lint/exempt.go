package lint

// The exemption grammar. A finding is suppressed by a comment of the
// form
//
//	//simlint:<kind>exempt <reason>
//
// placed either on the flagged line itself (trailing comment) or on the
// line directly above it (typically the doc comment's last line). The
// reason is mandatory: an exemption is a reviewed claim that the
// invariant holds for a different reason, and that reason must be
// written down where the next reader will look. A reasonless or
// unknown-kind simlint: comment is itself a diagnostic.
//
// Kinds: snapexempt (snapcover), memoexempt (memoinval), enumexempt
// (enumtotal), hookexempt (hookpair).

import (
	"go/ast"
	"go/token"
	"regexp"
	"strconv"
	"strings"
)

// ExemptKinds are the recognized exemption comment kinds, by the
// analyzer that consumes each.
var ExemptKinds = map[string]string{
	"snapexempt": "snapcover",
	"memoexempt": "memoinval",
	"enumexempt": "enumtotal",
	"hookexempt": "hookpair",
}

var exemptRe = regexp.MustCompile(`^//simlint:([a-z]+)[ \t]*(.*)$`)

// exemption is one parsed //simlint:...exempt comment.
type exemption struct {
	pos    token.Pos
	kind   string // "snapexempt", ...
	reason string
}

// ParseExemptComment parses a comment's text. It returns ok=false for
// comments that are not simlint: directives at all.
func ParseExemptComment(text string) (kind, reason string, ok bool) {
	m := exemptRe.FindStringSubmatch(text)
	if m == nil {
		return "", "", false
	}
	return m[1], strings.TrimSpace(m[2]), true
}

// exemptionsFor collects the unit's exemptions of one kind, keyed by
// "file:line" for both the comment's own line and the line below it
// (so a doc-comment exemption covers the declaration it documents).
// Malformed exemptions of this kind — a missing reason — are reported
// as diagnostics by the consuming analyzer.
func exemptionsFor(u *Unit, kind string, report func(token.Pos, string, ...interface{})) map[string]exemption {
	out := make(map[string]exemption)
	for _, f := range u.SourceFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				k, reason, ok := ParseExemptComment(c.Text)
				if !ok || k != kind {
					continue
				}
				if reason == "" {
					report(c.Pos(),
						"exemption //simlint:%s is missing its mandatory reason; write why the invariant holds anyway",
						kind)
					continue
				}
				pos := u.Fset.Position(c.Pos())
				e := exemption{pos: c.Pos(), kind: kind, reason: reason}
				out[lineKey(pos.Filename, pos.Line)] = e
				out[lineKey(pos.Filename, pos.Line+1)] = e
			}
		}
	}
	return out
}

// exempted reports whether the node at pos carries a kind exemption:
// one parsed from its own line or the line directly above (the map
// already indexes each comment under both lines).
func exempted(u *Unit, ex map[string]exemption, pos token.Pos) bool {
	p := u.Fset.Position(pos)
	_, ok := ex[lineKey(p.Filename, p.Line)]
	return ok
}

func lineKey(file string, line int) string {
	return file + ":" + strconv.Itoa(line)
}

// checkUnknownExemptKinds flags simlint: comments whose kind is not in
// the grammar (a typo like //simlint:snapexmpt silently disables
// nothing — it must be loud). Run by the determinism analyzer, the
// base analyzer of every gate, so the check fires exactly once per
// unit.
func checkUnknownExemptKinds(u *Unit, report func(token.Pos, string, ...interface{})) {
	for _, f := range u.SourceFiles() {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				k, _, ok := ParseExemptComment(c.Text)
				if !ok {
					continue
				}
				if _, known := ExemptKinds[k]; !known {
					report(c.Pos(),
						"unknown simlint directive //simlint:%s; recognized kinds: snapexempt, memoexempt, enumexempt, hookexempt",
						k)
				}
			}
		}
	}
}

// CollectFileExemptions parses every simlint: directive in a file
// without type information — the live-tree meta-test walks the whole
// repository this way to assert all exemption comments parse and cite
// a reason.
func CollectFileExemptions(f *ast.File) (good, bad []*ast.Comment) {
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			k, reason, ok := ParseExemptComment(c.Text)
			if !ok {
				continue
			}
			if _, known := ExemptKinds[k]; known && reason != "" {
				good = append(good, c)
			} else {
				bad = append(bad, c)
			}
		}
	}
	return good, bad
}
