package lint

import (
	"bytes"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// addFile registers a synthetic file and returns a Pos on the given line.
func addFile(fset *token.FileSet, name string, line int) token.Pos {
	const size = 1000
	f := fset.AddFile(name, -1, size)
	lines := make([]int, line)
	for i := range lines {
		lines[i] = i * 10
	}
	f.SetLines(lines)
	return f.Pos((line - 1) * 10)
}

func TestToJSONRelativizesAndSorts(t *testing.T) {
	fset := token.NewFileSet()
	root := string(filepath.Separator) + filepath.Join("repo")
	inB := addFile(fset, filepath.Join(root, "b", "b.go"), 3)
	inA := addFile(fset, filepath.Join(root, "a", "a.go"), 7)
	outside := addFile(fset, string(filepath.Separator)+filepath.Join("elsewhere", "x.go"), 1)

	got := ToJSON(fset, root, []Diagnostic{
		{Analyzer: "snapcover", Pos: inB, Msg: "m1"},
		{Analyzer: "enumtotal", Pos: inA, Msg: "m2"},
		{Analyzer: "hookpair", Pos: outside, Msg: "m3"},
	})
	if len(got) != 3 {
		t.Fatalf("got %d diagnostics, want 3", len(got))
	}
	if got[0].File != string(filepath.Separator)+filepath.ToSlash(filepath.Join("elsewhere", "x.go")) {
		t.Errorf("outside-root path was relativized: %q", got[0].File)
	}
	if got[1].File != "a/a.go" || got[1].Line != 7 || got[1].Analyzer != "enumtotal" {
		t.Errorf("got[1] = %+v, want a/a.go:7 enumtotal", got[1])
	}
	if got[2].File != "b/b.go" || got[2].Line != 3 {
		t.Errorf("got[2] = %+v, want b/b.go:3", got[2])
	}
}

func TestJSONRoundTrip(t *testing.T) {
	diags := []JSONDiagnostic{
		{Analyzer: "memoinval", File: "sim/cpu/core.go", Line: 10, Col: 1, Message: "m"},
		{Analyzer: "snapcover", File: "sim/cache/cache.go", Line: 20, Col: 2, Message: "n"},
	}
	var buf bytes.Buffer
	if err := WriteJSON(&buf, diags); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "findings.json")
	if err := os.WriteFile(path, buf.Bytes(), 0o666); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(diags) {
		t.Fatalf("round trip lost diagnostics: %d != %d", len(got), len(diags))
	}
	for i := range diags {
		if got[i] != diags[i] {
			t.Errorf("round trip [%d]: %+v != %+v", i, got[i], diags[i])
		}
	}

	if _, err := ReadJSONFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing baseline accepted")
	}
	bad := filepath.Join(t.TempDir(), "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadJSONFile(bad); err == nil {
		t.Error("malformed baseline accepted")
	}
}

func TestDiffIsLineAgnosticAndCountsMultiplicity(t *testing.T) {
	base := JSONDiagnostic{Analyzer: "snapcover", File: "a.go", Line: 5, Message: "field X uncovered"}
	moved := base
	moved.Line = 50 // same finding, shifted by an unrelated edit
	second := base
	second.Line = 60 // a second identical finding: new
	other := JSONDiagnostic{Analyzer: "enumtotal", File: "a.go", Line: 5, Message: "switch partial"}

	got := Diff([]JSONDiagnostic{base}, []JSONDiagnostic{moved})
	if len(got) != 0 {
		t.Errorf("a moved finding reported as new: %v", got)
	}

	got = Diff([]JSONDiagnostic{base}, []JSONDiagnostic{moved, second, other})
	if len(got) != 2 {
		t.Fatalf("got %d new findings, want 2 (duplicate + other): %v", len(got), got)
	}
	if got[0] != second || got[1] != other {
		t.Errorf("diff = %v, want [second, other]", got)
	}

	if got := Diff(nil, nil); len(got) != 0 {
		t.Errorf("empty diff nonempty: %v", got)
	}
	if got := Diff([]JSONDiagnostic{base}, nil); len(got) != 0 {
		t.Errorf("fixed finding reported: %v", got)
	}
}
