// Command simlint is the repository's multi-analyzer invariant
// checker: five static analyzers for the simulator's own correctness
// contracts, sharing one typechecked view of each package.
//
//   - determinism — byte-identical output for identical inputs (the
//     original tools/determlint checks);
//   - snapcover — every field of a struct with a Snapshot()/Restore()
//     pair is serialized or carries //simlint:snapexempt <reason>;
//   - memoinval — exported methods writing replay-memo fingerprint
//     inputs call the memo-invalidation path or carry
//     //simlint:memoexempt <reason>;
//   - enumtotal — switches over the repo's closed enums are total;
//   - hookpair — hook-interface implementations handle the full hook
//     set or delegate via embedding.
//
// Three ways to run it:
//
// As a vet tool (the CI simlint-gate; exercises the cmd/go vet
// protocol — -V=full handshake, -flags enumeration, one vet.cfg
// invocation per package):
//
//	go build -o bin/simlint ./tools/simlint
//	go vet -vettool=$PWD/bin/simlint ./...
//	go vet -vettool=$PWD/bin/simlint -snapcover=false ./sim/...
//
// Standalone over module packages (no cmd/go in the loop; loads the
// module from source):
//
//	bin/simlint ./sim/... ./analysis/...
//	bin/simlint -json ./... > findings.json
//	bin/simlint -fail -enumtotal=false ./attack/...
//
// Baseline diff for incremental adoption (exit 2 only on findings
// absent from the baseline; keys ignore line numbers so unrelated
// edits don't churn the gate):
//
//	bin/simlint -diff baseline.json findings.json
//
// Per-analyzer enable flags (-determinism, -snapcover, -memoinval,
// -enumtotal, -hookpair) default to true and work in all modes.
// Exit codes: 0 clean, 1 usage/load error, 2 findings (vet mode and
// -fail/-diff).
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"microscope/tools/simlint/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// The -V=full handshake arrives before any other flag and alone.
	if len(args) == 1 && strings.HasPrefix(args[0], "-V") {
		lint.PrintVersion("simlint")
		return 0
	}
	if len(args) == 1 && args[0] == "-flags" {
		// cmd/go asks which analyzer flags we accept.
		fmt.Println(lint.VetFlagDefs())
		return 0
	}

	fs := flag.NewFlagSet("simlint", flag.ContinueOnError)
	enabled := make(map[string]*bool)
	for _, a := range lint.All() {
		enabled[a.Name] = fs.Bool(a.Name, true, "enable the "+a.Name+" analyzer")
	}
	jsonOut := fs.Bool("json", false, "emit machine-readable JSON diagnostics")
	failOnDiag := fs.Bool("fail", false, "exit 2 when any finding is reported (standalone mode)")
	diffMode := fs.Bool("diff", false, "diff two findings files: simlint -diff old.json new.json")
	if err := fs.Parse(args); err != nil {
		return 1
	}

	var analyzers []*lint.Analyzer
	for _, a := range lint.All() {
		if *enabled[a.Name] {
			analyzers = append(analyzers, a)
		}
	}

	rest := fs.Args()
	switch {
	case *diffMode:
		return runDiff(rest, *jsonOut)
	case len(rest) == 1 && strings.HasSuffix(rest[0], ".cfg"):
		// vet protocol: one unit config per package.
		diags, err := lint.RunUnit(rest[0], analyzers)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		if len(diags) > 0 {
			return 2 // the exit code cmd/go expects for findings
		}
		return 0
	case len(rest) > 0:
		return runStandalone(rest, analyzers, *jsonOut, *failOnDiag)
	default:
		fmt.Fprintln(os.Stderr,
			"usage: simlint [flags] ./pkg/...  |  simlint -diff old.json new.json  |  go vet -vettool=bin/simlint ./...")
		return 1
	}
}

func runStandalone(patterns []string, analyzers []*lint.Analyzer, jsonOut, failOnDiag bool) int {
	l, err := lint.NewLoader(".")
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	paths, err := l.ExpandPatterns(patterns)
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	var all []lint.JSONDiagnostic
	for _, path := range paths {
		u, err := l.Load(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
		diags := lint.Run(u, analyzers)
		all = append(all, lint.ToJSON(l.Fset, l.ModRoot, diags)...)
	}
	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, all); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	} else {
		for _, d := range all {
			fmt.Printf("%s:%d:%d: %s: %s\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if failOnDiag && len(all) > 0 {
		return 2
	}
	return 0
}

func runDiff(files []string, jsonOut bool) int {
	if len(files) != 2 {
		fmt.Fprintln(os.Stderr, "usage: simlint -diff old.json new.json")
		return 1
	}
	oldD, err := lint.ReadJSONFile(files[0])
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	newD, err := lint.ReadJSONFile(files[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "simlint:", err)
		return 1
	}
	fresh := lint.Diff(oldD, newD)
	if jsonOut {
		if err := lint.WriteJSON(os.Stdout, fresh); err != nil {
			fmt.Fprintln(os.Stderr, "simlint:", err)
			return 1
		}
	} else {
		for _, d := range fresh {
			fmt.Printf("%s:%d:%d: %s: %s (new since baseline)\n", d.File, d.Line, d.Col, d.Analyzer, d.Message)
		}
	}
	if len(fresh) > 0 {
		return 2
	}
	return 0
}
