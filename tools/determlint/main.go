// Command determlint is a vet tool enforcing the repository's
// determinism contract: simulation and analysis code must produce
// byte-identical output for identical inputs (ROADMAP "determinism"
// invariant; the sweep runner and golden-output tests depend on it).
//
// It flags, outside _test.go files:
//
//   - uses of the global math/rand source (rand.Intn, rand.Seed, ...);
//   - time.Now;
//   - range-over-map loops whose iteration order reaches output
//     (append to an outer accumulator that is never sorted, direct
//     prints or stream writes);
//   - raw go statements outside the approved analysis/sweep worker
//     pool (goroutine discipline: the pool joins results in
//     deterministic input order, everything else must route through it).
//
// Run it through the vet driver:
//
//	go build -o bin/determlint ./tools/determlint
//	go vet -vettool=bin/determlint ./sim/... ./analysis/... ./attack/... ./cmd/... ./tools/...
//
// The tool speaks the cmd/go vet-tool protocol (-V=full handshake,
// -flags enumeration, then one invocation per package with a vet.cfg
// file) using only the standard library — the x/tools unitchecker
// framework is deliberately not a dependency.
package main

import (
	"fmt"
	"os"
	"strings"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// Build-ID handshake: cmd/go fingerprints the tool for its
		// action cache.
		printVersion()
	case len(args) == 1 && args[0] == "-flags":
		// cmd/go asks which analyzer flags we accept: none.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		diags, err := runUnit(args[0])
		if err != nil {
			fmt.Fprintln(os.Stderr, "determlint:", err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			os.Exit(2) // diagnostics: the exit code cmd/go expects
		}
	default:
		fmt.Fprintln(os.Stderr,
			"determlint is a vet tool; run via: go vet -vettool=$(go env GOPATH)/bin/determlint ./...")
		os.Exit(64)
	}
}
