// Command determlint is the deprecated single-analyzer predecessor of
// tools/simlint. It remains as a thin wrapper so existing invocations
// (`go vet -vettool=bin/determlint ./...`) keep working, but it now
// runs simlint's determinism analyzer — the checks themselves moved to
// tools/simlint/lint (determinism.go) unchanged.
//
// Deprecated: build tools/simlint instead; it runs the determinism
// checks plus the snapshot-coverage, memo-invalidation, enum-totality
// and hook-completeness analyzers. See docs/static-analysis.md.
package main

import (
	"fmt"
	"os"
	"strings"

	"microscope/tools/simlint/lint"
)

func main() {
	args := os.Args[1:]
	switch {
	case len(args) == 1 && strings.HasPrefix(args[0], "-V"):
		// Build-ID handshake: cmd/go fingerprints the tool for its
		// action cache.
		lint.PrintVersion("determlint")
	case len(args) == 1 && args[0] == "-flags":
		// cmd/go asks which analyzer flags we accept: none — the
		// wrapper is pinned to the determinism analyzer.
		fmt.Println("[]")
	case len(args) == 1 && strings.HasSuffix(args[0], ".cfg"):
		diags, err := lint.RunUnit(args[0], []*lint.Analyzer{lint.ByName("determinism")})
		if err != nil {
			fmt.Fprintln(os.Stderr, "determlint:", err)
			os.Exit(1)
		}
		if len(diags) > 0 {
			os.Exit(2) // diagnostics: the exit code cmd/go expects
		}
	default:
		fmt.Fprintln(os.Stderr,
			"determlint is deprecated; use tools/simlint (go vet -vettool=bin/simlint ./...)")
		os.Exit(64)
	}
}
