package main

// The cmd/go vet-tool protocol, stdlib-only.
//
// For each package, cmd/go writes a JSON config describing the unit of
// work (file list, import map, export-data locations) and invokes the
// tool with the config path as its sole argument. The tool typechecks
// the package against the compiler's export data, runs its checks,
// prints findings to stderr as file:line:col: message, writes its facts
// file (empty — these checks are intraprocedural), and exits 2 when it
// found anything.

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
)

// unitConfig mirrors the fields of cmd/go's vet config that this tool
// consumes (the file carries more; unknown fields are ignored).
type unitConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string
}

func runUnit(cfgPath string) ([]diagnostic, error) {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return nil, err
	}
	var cfg unitConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %v", cfgPath, err)
	}
	if cfg.VetxOnly {
		// Dependency of a listed package: cmd/go only wants our facts
		// (none — the checks are intraprocedural), not diagnostics.
		if cfg.VetxOutput != "" {
			if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
				return nil, err
			}
		}
		return nil, nil
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// Export-data importer: resolve an import path through ImportMap
	// (vendoring, test variants), then read the compiled package file
	// cmd/go listed for it.
	exp := importer.ForCompiler(fset, compiler, func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	imp := importerFunc(func(importPath string) (*types.Package, error) {
		if importPath == "unsafe" {
			return types.Unsafe, nil
		}
		if mapped, ok := cfg.ImportMap[importPath]; ok {
			importPath = mapped
		}
		return exp.Import(importPath)
	})

	info := newInfo()
	tc := types.Config{Importer: imp}
	if _, err := tc.Check(cfg.ImportPath, fset, files, info); err != nil {
		return nil, fmt.Errorf("typechecking %s: %v", cfg.ImportPath, err)
	}

	diags := runChecks(fset, files, info, cfg.ImportPath)
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s\n", fset.Position(d.pos), d.msg)
	}
	// cmd/go caches a facts file per package and feeds it to dependents;
	// it must exist even though these checks export no facts.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return nil, err
		}
	}
	return diags, nil
}

func newInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
}

type importerFunc func(string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// printVersion answers the -V=full handshake. The format is the one
// cmd/go's tool-ID scanner accepts: name, "version", a version string
// whose buildID term fingerprints the binary.
func printVersion() {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		os.Exit(1)
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		os.Exit(1)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		os.Exit(1)
	}
	fmt.Printf("%s version devel determlint buildID=%02x\n", exe, h.Sum(nil))
}
