package main

// An analysistest-style harness: typecheck the fixture package, run the
// checks, and compare the diagnostics against the `// want` comments in
// the sources (each holds a regexp, backquoted or double-quoted, that
// must match the diagnostic reported on its line).

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

var wantRe = regexp.MustCompile("// want (`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\")")

func loadFixture(t *testing.T, dir string) (*token.FileSet, []*ast.File, *types.Info) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}
	info := newInfo()
	tc := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := tc.Check("determ", fset, files, info); err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	return fset, files, info
}

// wants maps file:line to the expected-diagnostic regexp on that line.
func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[string]*regexp.Regexp {
	t.Helper()
	wants := make(map[string]*regexp.Regexp)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pat := m[1]
				if pat[0] == '"' {
					var err error
					if pat, err = strconv.Unquote(pat); err != nil {
						t.Fatalf("bad want pattern %s: %v", m[1], err)
					}
				} else {
					pat = pat[1 : len(pat)-1]
				}
				pos := fset.Position(c.Pos())
				key := posKey(pos.Filename, pos.Line)
				wants[key] = regexp.MustCompile(pat)
			}
		}
	}
	return wants
}

func posKey(file string, line int) string {
	return filepath.Base(file) + ":" + strconv.Itoa(line)
}

func TestChecksAgainstFixture(t *testing.T) {
	fset, files, info := loadFixture(t, filepath.Join("testdata", "src", "determ"))
	wants := collectWants(t, fset, files)
	if len(wants) == 0 {
		t.Fatal("fixture has no want comments")
	}

	got := make(map[string]string)
	for _, d := range runChecks(fset, files, info, "determ") {
		pos := fset.Position(d.pos)
		key := posKey(pos.Filename, pos.Line)
		if prev, dup := got[key]; dup {
			t.Errorf("%s: two diagnostics on one line: %q and %q", key, prev, d.msg)
		}
		got[key] = d.msg
	}

	for key, re := range wants {
		msg, ok := got[key]
		if !ok {
			t.Errorf("%s: want diagnostic matching %q, got none", key, re)
			continue
		}
		if !re.MatchString(msg) {
			t.Errorf("%s: diagnostic %q does not match %q", key, msg, re)
		}
	}
	for key, msg := range got {
		if _, ok := wants[key]; !ok {
			t.Errorf("%s: unexpected diagnostic %q", key, msg)
		}
	}
}

// The approved worker-pool package may use raw go statements: the same
// sources that are flagged under any other import path must come back
// clean when typechecked as microscope/analysis/sweep.
func TestGoroutineExemption(t *testing.T) {
	src := `package sweep

func fanOut(jobs []func()) {
	for _, j := range jobs {
		go j()
	}
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "pool.go", src, parser.SkipObjectResolution)
	if err != nil {
		t.Fatal(err)
	}
	info := newInfo()
	tc := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	if _, err := tc.Check("microscope/analysis/sweep", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typechecking synthetic pool: %v", err)
	}
	if diags := runChecks(fset, []*ast.File{f}, info, "microscope/analysis/sweep"); len(diags) != 0 {
		t.Errorf("worker-pool package flagged: %v", diags)
	}
	if diags := runChecks(fset, []*ast.File{f}, info, "microscope/attack/experiments"); len(diags) != 1 {
		t.Errorf("non-pool package: got %d diagnostics, want 1", len(diags))
	}
}

// The repo's own simulation and analysis packages must be clean — the
// same invariant the CI lint job enforces via go vet.
func TestVetCfgSmoke(t *testing.T) {
	// Exercise the vet.cfg path end to end on the fixture package using
	// source import resolution: write a minimal config whose
	// PackageFile map is empty and whose imports resolve nothing — the
	// fixture only needs stdlib, which the gc importer can't provide
	// here, so this test instead validates config parsing failure modes.
	dir := t.TempDir()
	if _, err := runUnit(filepath.Join(dir, "missing.cfg")); err == nil {
		t.Error("missing config accepted")
	}
	bad := filepath.Join(dir, "bad.cfg")
	if err := os.WriteFile(bad, []byte("{"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := runUnit(bad); err == nil {
		t.Error("malformed config accepted")
	}
}
