// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark trajectories (ns/op, allocs/op and the
// custom figure-of-merit metrics the bench harness reports, including
// sim-mcycles-per-sec) can be committed and diffed across PRs — the
// BENCH_*.json files at the repository root are its output.
//
// Usage:
//
//	go test -bench=. -benchmem | go run ./tools/benchjson -o BENCH_PR3.json
//	go run ./tools/benchjson -diff [-gate-metric U] [-max-regress F] old.json new.json
//
// Input is read from stdin (or a file named as the sole positional
// argument); output goes to -o, default stdout. Only the standard
// library is used. The JSON is deterministic for a given input: metric
// keys are emitted in sorted order and benchmarks in input order.
//
// -diff compares two previously emitted JSON documents benchmark by
// benchmark, printing per-metric deltas, and acts as a regression gate:
// if the gate metric (default sim-mcycles-per-sec, higher is better)
// drops by more than -max-regress (a fraction, default 0.5) on any
// benchmark present in both files, the exit status is nonzero. CI's
// bench-smoke job runs it against the committed baseline, so a change
// that tanks simulator throughput fails the build rather than landing
// silently.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the "Benchmark" prefix and any
	// "-8" GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op" and every
	// custom b.ReportMetric unit ("separation-x", "sim-mcycles-per-sec").
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole parsed bench run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects header context and
// benchmark lines. Unrecognized lines (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			if b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   2   210227940 ns/op   34.00 div-over   106553 allocs/op
//
// The fields after the iteration count alternate value/unit. A line that
// is not a result (e.g. a "BenchmarkX" header printed without fields by
// -v) yields (nil, nil).
func parseBenchLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkX ... some log" — not a result line
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := &Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q", fields[0], fields[i])
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func run(in io.Reader, out io.Writer) error {
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep) // map keys marshal in sorted order
}

// loadReport reads a JSON document previously produced by this tool.
func loadReport(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("benchjson: %s: %w", path, err)
	}
	return rep, nil
}

// runDiff prints per-metric deltas between two reports (new-report
// benchmark order, sorted metric order) and returns whether the gate
// metric regressed beyond maxRegress on any benchmark present in both.
// The gate metric is higher-is-better; a benchmark or metric missing on
// either side is reported but never gates.
func runDiff(oldRep, newRep *Report, gateMetric string, maxRegress float64, out io.Writer) bool {
	oldBy := map[string]Benchmark{}
	for _, b := range oldRep.Benchmarks {
		oldBy[b.Name] = b
	}
	regressed := false
	for _, nb := range newRep.Benchmarks {
		ob, ok := oldBy[nb.Name]
		if !ok {
			fmt.Fprintf(out, "%s: only in new report\n", nb.Name)
			continue
		}
		delete(oldBy, nb.Name)
		fmt.Fprintf(out, "%s\n", nb.Name)
		units := make([]string, 0, len(nb.Metrics))
		for u := range nb.Metrics {
			units = append(units, u)
		}
		sort.Strings(units)
		for _, u := range units {
			nv := nb.Metrics[u]
			ov, ok := ob.Metrics[u]
			if !ok {
				fmt.Fprintf(out, "  %-24s %14.4g (no old value)\n", u, nv)
				continue
			}
			line := fmt.Sprintf("  %-24s %14.4g -> %-14.4g", u, ov, nv)
			if ov != 0 {
				line += fmt.Sprintf(" %+8.1f%%", 100*(nv-ov)/ov)
			}
			if u == gateMetric && ov > 0 && nv < ov*(1-maxRegress) {
				line += fmt.Sprintf("  REGRESSION (beyond -%.0f%% gate)", 100*maxRegress)
				regressed = true
			}
			fmt.Fprintln(out, line)
		}
		gone := make([]string, 0, len(ob.Metrics))
		for u := range ob.Metrics {
			if _, ok := nb.Metrics[u]; !ok {
				gone = append(gone, u)
			}
		}
		sort.Strings(gone)
		for _, u := range gone {
			fmt.Fprintf(out, "  %-24s dropped (was %.4g)\n", u, ob.Metrics[u])
		}
	}
	dropped := make([]string, 0, len(oldBy))
	for name := range oldBy {
		dropped = append(dropped, name)
	}
	sort.Strings(dropped)
	for _, name := range dropped {
		fmt.Fprintf(out, "%s: only in old report\n", name)
	}
	return regressed
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	diff := flag.Bool("diff", false, "compare two JSON reports: benchjson -diff old.json new.json")
	gateMetric := flag.String("gate-metric", "sim-mcycles-per-sec",
		"higher-is-better metric the -diff regression gate watches")
	maxRegress := flag.Float64("max-regress", 0.5,
		"fraction of -gate-metric loss tolerated by -diff before exiting nonzero")
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "usage: benchjson -diff [-gate-metric U] [-max-regress F] old.json new.json")
			os.Exit(2)
		}
		oldRep, err := loadReport(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		newRep, err := loadReport(flag.Arg(1))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		if runDiff(oldRep, newRep, *gateMetric, *maxRegress, os.Stdout) {
			fmt.Fprintf(os.Stderr, "benchjson: %s regressed beyond the %.0f%% gate\n",
				*gateMetric, 100**maxRegress)
			os.Exit(1)
		}
		return
	}

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
