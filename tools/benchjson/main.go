// Command benchjson converts `go test -bench` text output into a stable
// JSON document, so benchmark trajectories (ns/op, allocs/op and the
// custom figure-of-merit metrics the bench harness reports, including
// sim-mcycles-per-sec) can be committed and diffed across PRs — the
// BENCH_*.json files at the repository root are its output.
//
// Usage:
//
//	go test -bench=. -benchmem | go run ./tools/benchjson -o BENCH_PR3.json
//
// Input is read from stdin (or a file named as the sole positional
// argument); output goes to -o, default stdout. Only the standard
// library is used. The JSON is deterministic for a given input: metric
// keys are emitted in sorted order and benchmarks in input order.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one parsed benchmark result line.
type Benchmark struct {
	// Name is the benchmark name with the "Benchmark" prefix and any
	// "-8" GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Iterations is b.N for the reported run.
	Iterations int64 `json:"iterations"`
	// Metrics maps unit -> value: "ns/op", "B/op", "allocs/op" and every
	// custom b.ReportMetric unit ("separation-x", "sim-mcycles-per-sec").
	Metrics map[string]float64 `json:"metrics"`
}

// Report is the whole parsed bench run.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Pkg        string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Parse reads `go test -bench` output and collects header context and
// benchmark lines. Unrecognized lines (PASS, ok, test logs) are skipped.
func Parse(r io.Reader) (*Report, error) {
	rep := &Report{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			rep.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			rep.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "pkg: "):
			rep.Pkg = strings.TrimPrefix(line, "pkg: ")
		case strings.HasPrefix(line, "cpu: "):
			rep.CPU = strings.TrimPrefix(line, "cpu: ")
		case strings.HasPrefix(line, "Benchmark"):
			b, err := parseBenchLine(line)
			if err != nil {
				return nil, fmt.Errorf("benchjson: %w", err)
			}
			if b != nil {
				rep.Benchmarks = append(rep.Benchmarks, *b)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return rep, nil
}

// parseBenchLine parses one result line:
//
//	BenchmarkName-8   2   210227940 ns/op   34.00 div-over   106553 allocs/op
//
// The fields after the iteration count alternate value/unit. A line that
// is not a result (e.g. a "BenchmarkX" header printed without fields by
// -v) yields (nil, nil).
func parseBenchLine(line string) (*Benchmark, error) {
	fields := strings.Fields(line)
	if len(fields) < 4 || (len(fields)-2)%2 != 0 {
		return nil, nil
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return nil, nil // "BenchmarkX ... some log" — not a result line
	}
	name := strings.TrimPrefix(fields[0], "Benchmark")
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
	}
	b := &Benchmark{Name: name, Iterations: iters, Metrics: map[string]float64{}}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return nil, fmt.Errorf("%s: bad value %q", fields[0], fields[i])
		}
		b.Metrics[fields[i+1]] = v
	}
	return b, nil
}

func run(in io.Reader, out io.Writer) error {
	rep, err := Parse(in)
	if err != nil {
		return err
	}
	if len(rep.Benchmarks) == 0 {
		return fmt.Errorf("benchjson: no benchmark lines in input")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(rep) // map keys marshal in sorted order
}

func main() {
	outPath := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	in := io.Reader(os.Stdin)
	if flag.NArg() == 1 {
		f, err := os.Open(flag.Arg(0))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		in = f
	} else if flag.NArg() > 1 {
		fmt.Fprintln(os.Stderr, "usage: benchjson [-o out.json] [bench-output.txt]")
		os.Exit(2)
	}

	out := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer f.Close()
		out = f
	}
	if err := run(in, out); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
