package main

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: microscope
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkTable1Taxonomy-4      	  702818	      1530 ns/op	    1144 B/op	      23 allocs/op
BenchmarkFig10PortContention   	       2	 210227940 ns/op	        34.00 div-over	         2.000 mul-over	        17.00 separation-x	        53.00 threshold-cycles	       123.4 sim-mcycles-per-sec	161015668 B/op	  106553 allocs/op
--- BENCH: BenchmarkSomething
    some free-form log line
PASS
ok  	microscope	1.146s
`

func TestParseHeadersAndBenchLines(t *testing.T) {
	rep, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Goos != "linux" || rep.Goarch != "amd64" || rep.Pkg != "microscope" {
		t.Errorf("headers: %+v", rep)
	}
	if !strings.Contains(rep.CPU, "Xeon") {
		t.Errorf("cpu: %q", rep.CPU)
	}
	if len(rep.Benchmarks) != 2 {
		t.Fatalf("parsed %d benchmarks, want 2", len(rep.Benchmarks))
	}

	b0 := rep.Benchmarks[0]
	if b0.Name != "Table1Taxonomy" {
		t.Errorf("name %q: -GOMAXPROCS suffix not stripped", b0.Name)
	}
	if b0.Iterations != 702818 {
		t.Errorf("iterations %d", b0.Iterations)
	}
	if b0.Metrics["ns/op"] != 1530 || b0.Metrics["allocs/op"] != 23 {
		t.Errorf("metrics %v", b0.Metrics)
	}

	b1 := rep.Benchmarks[1]
	if b1.Name != "Fig10PortContention" {
		t.Errorf("name %q: unsuffixed name mangled", b1.Name)
	}
	want := map[string]float64{
		"ns/op":               210227940,
		"div-over":            34,
		"mul-over":            2,
		"separation-x":        17,
		"threshold-cycles":    53,
		"sim-mcycles-per-sec": 123.4,
		"B/op":                161015668,
		"allocs/op":           106553,
	}
	for k, v := range want {
		if b1.Metrics[k] != v {
			t.Errorf("metric %s = %v, want %v", k, b1.Metrics[k], v)
		}
	}
	if len(b1.Metrics) != len(want) {
		t.Errorf("extra metrics: %v", b1.Metrics)
	}
}

func TestParseSkipsNonResultBenchmarkLines(t *testing.T) {
	in := "BenchmarkHeaderOnly\nBenchmarkWithLog    some log text here\n"
	rep, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Benchmarks) != 0 {
		t.Errorf("parsed %d benchmarks from non-result lines", len(rep.Benchmarks))
	}
}

func TestRunEmitsDeterministicSortedJSON(t *testing.T) {
	var out1, out2 bytes.Buffer
	if err := run(strings.NewReader(sampleOutput), &out1); err != nil {
		t.Fatal(err)
	}
	if err := run(strings.NewReader(sampleOutput), &out2); err != nil {
		t.Fatal(err)
	}
	if out1.String() != out2.String() {
		t.Error("output not deterministic")
	}
	s := out1.String()
	// Map keys must marshal sorted: B/op < allocs/op < ns/op ("B" sorts
	// before lowercase).
	if !strings.Contains(s, `"sim-mcycles-per-sec"`) {
		t.Error("custom metric missing from JSON")
	}
	iB := strings.Index(s, `"B/op"`)
	iA := strings.Index(s, `"allocs/op"`)
	iN := strings.Index(s, `"ns/op"`)
	if !(iB < iA && iA < iN) || iB < 0 {
		t.Errorf("metric keys not sorted: B/op@%d allocs/op@%d ns/op@%d", iB, iA, iN)
	}
}

func TestRunRejectsEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\nok\n"), &out); err == nil {
		t.Error("empty bench run accepted")
	}
}

func diffReport(name string, metrics map[string]float64) *Report {
	return &Report{Benchmarks: []Benchmark{{Name: name, Iterations: 1, Metrics: metrics}}}
}

func TestDiffReportsDeltasAndGates(t *testing.T) {
	oldRep := diffReport("Fig10PortContention", map[string]float64{
		"sim-mcycles-per-sec": 2.0, "ns/op": 100, "separation-x": 17,
	})
	newRep := diffReport("Fig10PortContention", map[string]float64{
		"sim-mcycles-per-sec": 13.0, "ns/op": 20, "threshold-cycles": 53,
	})

	var out bytes.Buffer
	if runDiff(oldRep, newRep, "sim-mcycles-per-sec", 0.5, &out) {
		t.Errorf("6.5x improvement flagged as regression:\n%s", out.String())
	}
	s := out.String()
	for _, want := range []string{
		"Fig10PortContention",
		"sim-mcycles-per-sec",
		"+550.0%",
		"-80.0%",
		"(no old value)", // threshold-cycles gained
		"dropped",        // separation-x lost
	} {
		if !strings.Contains(s, want) {
			t.Errorf("diff output missing %q:\n%s", want, s)
		}
	}

	// Reversed direction: throughput drops 2.0 -> 13.0... i.e. 13 -> 2 is
	// an 85%% fall, beyond the 50%% gate.
	out.Reset()
	if !runDiff(newRep, oldRep, "sim-mcycles-per-sec", 0.5, &out) {
		t.Errorf("85%% throughput fall passed the 50%% gate:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "REGRESSION") {
		t.Errorf("gated metric not marked in output:\n%s", out.String())
	}

	// Within tolerance: a 25%% fall passes a 50%% gate.
	mid := diffReport("Fig10PortContention", map[string]float64{"sim-mcycles-per-sec": 1.5})
	out.Reset()
	if runDiff(oldRep, mid, "sim-mcycles-per-sec", 0.5, &out) {
		t.Errorf("25%% fall failed the 50%% gate:\n%s", out.String())
	}
}

func TestDiffDisjointBenchmarks(t *testing.T) {
	oldRep := diffReport("OnlyOld", map[string]float64{"ns/op": 1})
	newRep := diffReport("OnlyNew", map[string]float64{"ns/op": 1})
	var out bytes.Buffer
	if runDiff(oldRep, newRep, "sim-mcycles-per-sec", 0.5, &out) {
		t.Error("disjoint reports gated")
	}
	if !strings.Contains(out.String(), "OnlyNew: only in new report") ||
		!strings.Contains(out.String(), "OnlyOld: only in old report") {
		t.Errorf("missing disjoint notes:\n%s", out.String())
	}
}
