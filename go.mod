module microscope

go 1.22
